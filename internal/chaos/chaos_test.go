package chaos

import (
	"sync"
	"testing"
)

// drive hits every site a fixed number of times from one goroutine and
// returns the forced-failure pattern observed at Fail sites.
func drive(n int) []bool {
	var fails []bool
	for i := 0; i < n; i++ {
		for s := Site(0); s < NumSites; s++ {
			if s == SeqlockRead || s == SeqlockValidate || s == SeqlockUpgrade ||
				s == SeqlockFreeze || s == HazardRetire {
				fails = append(fails, Fail(s))
			} else {
				Step(s)
			}
		}
	}
	return fails
}

func TestDisabledHooksAreInert(t *testing.T) {
	if Enabled() {
		t.Fatal("chaos enabled at test start")
	}
	for _, f := range drive(100) {
		if f {
			t.Fatal("Fail returned true while disabled")
		}
	}
}

// TestSeedReproducesSchedule is the core determinism claim: the same seed
// and tuning replay the identical decision trace for a single-goroutine
// run, so a failure schedule is reproducible from its seed alone.
func TestSeedReproducesSchedule(t *testing.T) {
	cfg := Config{
		Seed:       0xdeadbeef,
		FailOneIn:  7,
		DelayOneIn: 0, // no sleeps: keep the test fast
		YieldOneIn: 5,
		Record:     true,
	}
	run := func() ([]bool, Report) {
		Enable(cfg)
		fails := drive(200)
		return fails, Disable()
	}
	fails1, rep1 := run()
	fails2, rep2 := run()

	if rep1.Steps != rep2.Steps {
		t.Fatalf("step counts differ: %d vs %d", rep1.Steps, rep2.Steps)
	}
	if len(fails1) != len(fails2) {
		t.Fatalf("fail sequences differ in length")
	}
	for i := range fails1 {
		if fails1[i] != fails2[i] {
			t.Fatalf("fail decision %d differs: %t vs %t", i, fails1[i], fails2[i])
		}
	}
	if len(rep1.Trace) == 0 {
		t.Fatal("no decisions recorded; tuning too weak for the test")
	}
	if len(rep1.Trace) != len(rep2.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(rep1.Trace), len(rep2.Trace))
	}
	for i := range rep1.Trace {
		if rep1.Trace[i] != rep2.Trace[i] {
			t.Fatalf("trace decision %d differs: %+v vs %+v", i, rep1.Trace[i], rep2.Trace[i])
		}
	}
	if rep1.Fails() == 0 {
		t.Fatal("no forced failures with FailOneIn=7 over 200 rounds")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	trace := func(seed uint64) []Decision {
		Enable(Config{Seed: seed, FailOneIn: 7, YieldOneIn: 5, Record: true})
		drive(200)
		return Disable().Trace
	}
	a, b := trace(1), trace(2)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seeds 1 and 2 produced identical traces")
		}
	}
}

func TestSiteMaskRestrictsInjection(t *testing.T) {
	Enable(Config{
		Seed:      42,
		FailOneIn: 1, // fail every masked hit
		Sites:     MaskOf(SeqlockValidate),
	})
	defer Disable()
	if Fail(SeqlockRead) {
		t.Fatal("unmasked site injected a failure")
	}
	if !Fail(SeqlockValidate) {
		t.Fatal("masked site with FailOneIn=1 did not fail")
	}
	Step(CoreMerge) // must be a no-op, not counted
	rep := active.Load().report()
	if rep.Sites[SeqlockRead].Calls != 0 || rep.Sites[CoreMerge].Calls != 0 {
		t.Fatalf("masked-out sites recorded calls: %v", rep)
	}
	if rep.Sites[SeqlockValidate].Fails != 1 {
		t.Fatalf("want 1 forced failure at validate, got %v", rep)
	}
}

func TestStepNeverFails(t *testing.T) {
	Enable(Config{Seed: 9, FailOneIn: 1})
	defer Disable()
	// Step sites draw with allowFail=false, so even FailOneIn=1 cannot
	// force a failure — only Fail() callers take the failure path.
	for i := 0; i < 50; i++ {
		Step(CoreSplit)
	}
	rep := active.Load().report()
	if rep.Sites[CoreSplit].Fails != 0 {
		t.Fatalf("Step recorded forced failures: %v", rep)
	}
	if rep.Sites[CoreSplit].Calls != 50 {
		t.Fatalf("Step calls = %d, want 50", rep.Sites[CoreSplit].Calls)
	}
}

func TestEnableTwicePanics(t *testing.T) {
	Enable(Config{})
	defer Disable()
	defer func() {
		if recover() == nil {
			t.Fatal("second Enable did not panic")
		}
	}()
	Enable(Config{})
}

func TestDisableWithoutEnablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Disable without Enable did not panic")
		}
	}()
	Disable()
}

// TestConcurrentHooks hammers the hooks from many goroutines (run under
// -race in CI): the counters must account for every hit exactly once.
func TestConcurrentHooks(t *testing.T) {
	Enable(Config{Seed: 77, FailOneIn: 16, YieldOneIn: 8, Record: true})
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				Fail(SeqlockValidate)
				Step(CoreMerge)
			}
		}()
	}
	wg.Wait()
	rep := Disable()
	if want := uint64(goroutines * perG * 2); rep.Steps != want {
		t.Fatalf("steps = %d, want %d", rep.Steps, want)
	}
	if rep.Sites[SeqlockValidate].Calls != goroutines*perG {
		t.Fatalf("validate calls = %d", rep.Sites[SeqlockValidate].Calls)
	}
	if rep.Fails() == 0 {
		t.Fatal("no forced failures across 4000 draws at 1-in-16")
	}
}
