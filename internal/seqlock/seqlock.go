// Package seqlock implements the sequence lock used by every skip vector
// node. It is a 64-bit word that combines a spinlock, a monotonically
// increasing sequence number, and two boolean flags described in Section III
// of the paper:
//
//   - isLocked (bit 0): set while a writer holds the lock.
//   - isFrozen (bit 1): set by Insert to reserve a node. Only the freezing
//     thread may later acquire the lock; other threads may still read the
//     node optimistically, but any attempt by them to lock or freeze it
//     fails and forces a restart.
//   - isOrphan (bit 2): set when the node has no parent entry in the layer
//     above (it is reachable only via its predecessor's next pointer).
//   - bits 3..63: the sequence number, incremented on every release that
//     followed a modification.
//
// A read-side critical section takes a snapshot of the word (ReadVersion),
// reads node fields, and then checks that the word is unchanged (Validate).
// Because the word changes whenever a writer acquires, freezes, or releases
// the lock, an unchanged word proves the reads were consistent.
//
// All transitions use atomic operations, so the package is safe under the Go
// memory model and clean under the race detector.
package seqlock

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"skipvector/internal/chaos"
	"skipvector/internal/telemetry"
)

// Package-level metrics, registered with the global telemetry registry. The
// lock has no per-structure identity, so the counters are process-wide; the
// stripe hint is the snapshot's sequence bits, which spreads unrelated nodes
// across stripes while goroutines contending on one node — which already
// share a cache line for the lock word itself — share a stripe. Spin metrics
// are accumulated in a local and flushed once per call, so the spin loops
// themselves stay free of shared-memory writes.
var (
	mReadSpins = telemetry.Global.Counter("sv_seqlock_read_spins_total",
		"Iterations spent in ReadVersion waiting out a writer.")
	mReadAborts = telemetry.Global.Counter("sv_seqlock_read_aborts_total",
		"ReadVersion calls that exhausted the spin budget and forced a restart.")
	mAcquireSpins = telemetry.Global.Counter("sv_seqlock_acquire_spins_total",
		"Iterations spent in Acquire waiting for the lock to clear.")
	mUpgradeFails = telemetry.Global.Counter("sv_seqlock_upgrade_cas_failures_total",
		"TryUpgrade attempts that lost the CAS race to another writer.")
	mFreezeFails = telemetry.Global.Counter("sv_seqlock_freeze_cas_failures_total",
		"TryFreeze attempts that lost the CAS race to another writer.")
)

// Bit layout of the lock word.
const (
	lockedBit = uint64(1) << 0
	frozenBit = uint64(1) << 1
	orphanBit = uint64(1) << 2
	seqIncr   = uint64(1) << 3

	flagMask = lockedBit | frozenBit | orphanBit
)

// spinBudget bounds how long ReadVersion and Acquire spin before yielding
// the processor. Sequence locks are held for very short critical sections,
// so a short spin usually suffices; yielding keeps single-core machines and
// oversubscribed GOMAXPROCS configurations live.
const spinBudget = 64

// Version is a snapshot of the lock word, used to validate optimistic reads.
type Version uint64

// Locked reports whether the snapshot was taken while a writer held the lock.
func (v Version) Locked() bool { return uint64(v)&lockedBit != 0 }

// Frozen reports whether the snapshot was taken while the node was frozen.
func (v Version) Frozen() bool { return uint64(v)&frozenBit != 0 }

// Orphan reports whether the node was an orphan at snapshot time.
func (v Version) Orphan() bool { return uint64(v)&orphanBit != 0 }

// Seq returns the sequence number portion of the snapshot.
func (v Version) Seq() uint64 { return uint64(v) >> 3 }

// String formats the version for debugging.
func (v Version) String() string {
	return fmt.Sprintf("seq=%d locked=%t frozen=%t orphan=%t",
		v.Seq(), v.Locked(), v.Frozen(), v.Orphan())
}

// Lock is the per-node sequence lock. The zero value is an unlocked,
// unfrozen, non-orphan lock with sequence number zero.
type Lock struct {
	word atomic.Uint64
}

// ReadVersion snapshots the lock word for an optimistic read-side critical
// section. It spins briefly while a writer holds the lock; if the lock stays
// held it returns ok=false so the caller can restart rather than block.
// A frozen (but unlocked) node is readable: the returned version carries the
// frozen bit and remains valid until the freezer upgrades or thaws.
func (l *Lock) ReadVersion() (Version, bool) {
	if chaos.Fail(chaos.SeqlockRead) {
		// Simulate exhausting the spin budget against a held lock; the
		// caller restarts exactly as it would under real contention.
		w := l.word.Load()
		mReadAborts.Inc(int(w >> 3))
		return Version(w), false
	}
	for i := 0; ; i++ {
		w := l.word.Load()
		if w&lockedBit == 0 {
			if i > 0 {
				mReadSpins.Add(int(w>>3), int64(i))
			}
			return Version(w), true
		}
		if i >= spinBudget {
			mReadSpins.Add(int(w>>3), int64(i))
			mReadAborts.Inc(int(w >> 3))
			return Version(w), false
		}
		runtime.Gosched()
	}
}

// Validate reports whether the lock word still equals the snapshot v, which
// proves that no writer acquired, froze, thawed, or released the lock since
// v was taken, and therefore that all reads made under v were consistent.
func (l *Lock) Validate(v Version) bool {
	if chaos.Fail(chaos.SeqlockValidate) {
		// Simulate a concurrent writer having changed the word; every
		// caller treats a failed validation as a restart.
		return false
	}
	return l.word.Load() == uint64(v)
}

// TryUpgrade atomically upgrades a reader holding snapshot v into a writer.
// It fails (returning false) if the word changed since v was taken, or if v
// itself carries the locked or frozen bits (a node frozen by another thread
// must not be locked out from under it).
func (l *Lock) TryUpgrade(v Version) bool {
	if uint64(v)&(lockedBit|frozenBit) != 0 {
		return false
	}
	if chaos.Fail(chaos.SeqlockUpgrade) {
		// Simulate losing the CAS race to another writer.
		mUpgradeFails.Inc(int(uint64(v) >> 3))
		return false
	}
	if l.word.CompareAndSwap(uint64(v), uint64(v)|lockedBit) {
		return true
	}
	mUpgradeFails.Inc(int(uint64(v) >> 3))
	return false
}

// TryFreeze atomically sets the frozen bit if the word still equals v and v
// is neither locked nor already frozen. On success it returns the new
// version (with the frozen bit set) that subsequent validations against this
// node must use.
func (l *Lock) TryFreeze(v Version) (Version, bool) {
	if uint64(v)&(lockedBit|frozenBit) != 0 {
		return v, false
	}
	if chaos.Fail(chaos.SeqlockFreeze) {
		// Simulate losing the freeze race.
		mFreezeFails.Inc(int(uint64(v) >> 3))
		return v, false
	}
	next := uint64(v) | frozenBit
	if l.word.CompareAndSwap(uint64(v), next) {
		return Version(next), true
	}
	mFreezeFails.Inc(int(uint64(v) >> 3))
	return v, false
}

// Thaw clears the frozen bit without bumping the sequence number. It is
// called by an Insert that froze the node but then decided not to modify it
// (for example because the key was already present). Readers that took their
// snapshot before the freeze remain valid, because the word returns to its
// pre-freeze value.
//
// The caller must be the thread that froze the node, and the node must not
// be locked.
func (l *Lock) Thaw() {
	for {
		w := l.word.Load()
		if w&frozenBit == 0 {
			panic("seqlock: Thaw of non-frozen lock")
		}
		if w&lockedBit != 0 {
			panic("seqlock: Thaw of locked lock")
		}
		if l.word.CompareAndSwap(w, w&^frozenBit) {
			return
		}
	}
}

// Acquire spins until it takes the write lock. It cannot acquire a node that
// is frozen by another thread; the freezer must upgrade or thaw first. The
// acquisition itself does not bump the sequence number (the release will),
// but setting the locked bit immediately invalidates optimistic readers.
func (l *Lock) Acquire() {
	chaos.Step(chaos.SeqlockAcquire)
	spins := 0
	for i := 0; ; i++ {
		w := l.word.Load()
		if w&(lockedBit|frozenBit) == 0 {
			if l.word.CompareAndSwap(w, w|lockedBit) {
				if spins > 0 {
					mAcquireSpins.Add(int(w>>3), int64(spins))
				}
				return
			}
			spins++
			continue
		}
		spins++
		if i >= spinBudget {
			i = 0
			runtime.Gosched()
		}
	}
}

// UpgradeFrozen moves a node from frozen to locked. Only the thread that
// froze the node may call it. The frozen bit is cleared and the locked bit
// set in a single atomic transition, so no other thread can sneak in.
func (l *Lock) UpgradeFrozen() {
	chaos.Step(chaos.SeqlockUpgrade)
	for {
		w := l.word.Load()
		if w&frozenBit == 0 {
			panic("seqlock: UpgradeFrozen of non-frozen lock")
		}
		if w&lockedBit != 0 {
			panic("seqlock: UpgradeFrozen of locked lock")
		}
		if l.word.CompareAndSwap(w, (w&^frozenBit)|lockedBit) {
			return
		}
	}
}

// Release drops the write lock after a modification: the locked (and frozen)
// bits are cleared and the sequence number is incremented, invalidating
// every optimistic reader of the node. It returns the new version so a
// caller that wants to keep reading the node can continue without reloading.
func (l *Lock) Release() Version {
	w := l.word.Load()
	if w&lockedBit == 0 {
		panic("seqlock: Release of unlocked lock")
	}
	next := (w &^ (lockedBit | frozenBit)) + seqIncr
	l.word.Store(next)
	return Version(next)
}

// Abort drops the write lock without bumping the sequence number. It is only
// legal when the holder made no modification to the protected data: in that
// case readers whose snapshots predate the acquisition are still consistent,
// so restoring the pre-acquisition word lets them validate successfully.
func (l *Lock) Abort() Version {
	w := l.word.Load()
	if w&lockedBit == 0 {
		panic("seqlock: Abort of unlocked lock")
	}
	next := w &^ (lockedBit | frozenBit)
	l.word.Store(next)
	return Version(next)
}

// SetOrphan sets or clears the orphan flag. The caller must hold the write
// lock: the flag describes structural state that only a locked writer may
// change. The flag change becomes visible to readers when the lock is
// released (which bumps the sequence number).
func (l *Lock) SetOrphan(orphan bool) {
	for {
		w := l.word.Load()
		if w&lockedBit == 0 {
			panic("seqlock: SetOrphan without holding lock")
		}
		var next uint64
		if orphan {
			next = w | orphanBit
		} else {
			next = w &^ orphanBit
		}
		if w == next || l.word.CompareAndSwap(w, next) {
			return
		}
	}
}

// IsOrphan reports the current orphan flag. Callers performing optimistic
// reads should prefer Version.Orphan on a validated snapshot.
func (l *Lock) IsOrphan() bool {
	return l.word.Load()&orphanBit != 0
}

// Current returns the instantaneous lock word as a Version. Unlike
// ReadVersion it does not spin or filter locked states; it is intended for
// debugging, tests, and invariant checks.
func (l *Lock) Current() Version {
	return Version(l.word.Load())
}
