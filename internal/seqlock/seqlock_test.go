package seqlock

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestZeroValueIsUnlocked(t *testing.T) {
	var l Lock
	v, ok := l.ReadVersion()
	if !ok {
		t.Fatal("zero-value lock should be readable")
	}
	if v.Locked() || v.Frozen() || v.Orphan() {
		t.Fatalf("zero-value lock has flags set: %v", v)
	}
	if v.Seq() != 0 {
		t.Fatalf("zero-value sequence = %d, want 0", v.Seq())
	}
}

func TestAcquireReleaseBumpsSequence(t *testing.T) {
	var l Lock
	before, _ := l.ReadVersion()
	l.Acquire()
	if !l.Current().Locked() {
		t.Fatal("lock word should carry locked bit after Acquire")
	}
	after := l.Release()
	if after.Locked() {
		t.Fatal("Release left locked bit set")
	}
	if after.Seq() != before.Seq()+1 {
		t.Fatalf("sequence after release = %d, want %d", after.Seq(), before.Seq()+1)
	}
	if l.Validate(before) {
		t.Fatal("pre-acquire version validated after a release")
	}
	if !l.Validate(after) {
		t.Fatal("version returned by Release should validate")
	}
}

func TestAbortRestoresVersion(t *testing.T) {
	var l Lock
	before, _ := l.ReadVersion()
	l.Acquire()
	got := l.Abort()
	if got != before {
		t.Fatalf("Abort returned %v, want pre-acquire %v", got, before)
	}
	if !l.Validate(before) {
		t.Fatal("pre-acquire version should validate after Abort")
	}
}

func TestValidateDetectsWriter(t *testing.T) {
	var l Lock
	v, _ := l.ReadVersion()
	l.Acquire()
	if l.Validate(v) {
		t.Fatal("Validate passed while lock held")
	}
	l.Release()
	if l.Validate(v) {
		t.Fatal("Validate passed after a modification release")
	}
}

func TestTryUpgrade(t *testing.T) {
	var l Lock
	v, _ := l.ReadVersion()
	if !l.TryUpgrade(v) {
		t.Fatal("TryUpgrade from a fresh snapshot should succeed")
	}
	if !l.Current().Locked() {
		t.Fatal("TryUpgrade should set locked bit")
	}
	l.Release()

	// Stale snapshot must fail.
	if l.TryUpgrade(v) {
		t.Fatal("TryUpgrade with stale snapshot should fail")
	}
}

func TestTryUpgradeRejectsLockedOrFrozenSnapshot(t *testing.T) {
	var l Lock
	v, _ := l.ReadVersion()
	fv, ok := l.TryFreeze(v)
	if !ok {
		t.Fatal("TryFreeze should succeed on fresh snapshot")
	}
	if l.TryUpgrade(fv) {
		t.Fatal("TryUpgrade must reject a frozen snapshot")
	}
	l.Thaw()
}

func TestFreezeThawPreservesPreFreezeReaders(t *testing.T) {
	var l Lock
	v, _ := l.ReadVersion()
	fv, ok := l.TryFreeze(v)
	if !ok {
		t.Fatal("TryFreeze failed")
	}
	if !fv.Frozen() {
		t.Fatal("frozen version missing frozen bit")
	}
	if l.Validate(v) {
		t.Fatal("pre-freeze version should not validate while frozen")
	}
	l.Thaw()
	if !l.Validate(v) {
		t.Fatal("pre-freeze version should validate again after Thaw")
	}
}

func TestFreezeBlocksOtherWriters(t *testing.T) {
	var l Lock
	v, _ := l.ReadVersion()
	fv, _ := l.TryFreeze(v)

	// A second freeze attempt from the frozen snapshot must fail.
	if _, ok := l.TryFreeze(fv); ok {
		t.Fatal("double freeze should fail")
	}
	// Upgrade to a full write lock, modify, release.
	l.UpgradeFrozen()
	w := l.Current()
	if !w.Locked() || w.Frozen() {
		t.Fatalf("UpgradeFrozen should move frozen->locked, got %v", w)
	}
	after := l.Release()
	if after.Frozen() || after.Locked() {
		t.Fatalf("release after upgrade left flags: %v", after)
	}
	if after.Seq() != fv.Seq()+1 {
		t.Fatalf("sequence = %d, want %d", after.Seq(), fv.Seq()+1)
	}
}

func TestOrphanFlag(t *testing.T) {
	var l Lock
	l.Acquire()
	l.SetOrphan(true)
	v := l.Release()
	if !v.Orphan() {
		t.Fatal("orphan bit lost on release")
	}
	if !l.IsOrphan() {
		t.Fatal("IsOrphan should report true")
	}
	l.Acquire()
	l.SetOrphan(false)
	v = l.Release()
	if v.Orphan() {
		t.Fatal("orphan bit should be cleared")
	}
}

func TestReadVersionGivesUpWhileLocked(t *testing.T) {
	var l Lock
	l.Acquire()
	defer l.Release()
	if _, ok := l.ReadVersion(); ok {
		t.Fatal("ReadVersion should report failure while writer holds lock")
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanics("Release unlocked", func() { new(Lock).Release() })
	assertPanics("Abort unlocked", func() { new(Lock).Abort() })
	assertPanics("Thaw unfrozen", func() { new(Lock).Thaw() })
	assertPanics("UpgradeFrozen unfrozen", func() { new(Lock).UpgradeFrozen() })
	assertPanics("SetOrphan unlocked", func() { new(Lock).SetOrphan(true) })
}

// TestConcurrentCounterInvariant drives many writers incrementing a pair of
// counters that must stay equal, with concurrent optimistic readers that
// retry on validation failure. A reader must never observe unequal counters
// on a validated read. As in the skip vector itself, fields read
// optimistically are atomic slots so the scheme is well-defined under the Go
// memory model.
func TestConcurrentCounterInvariant(t *testing.T) {
	var (
		l    Lock
		a, b atomic.Int64 // protected data: invariant a == b
	)
	const (
		writers = 4
		readers = 4
		iters   = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Acquire()
				a.Store(a.Load() + 1)
				b.Store(b.Load() + 1)
				l.Release()
			}
		}()
	}
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for {
					v, ok := l.ReadVersion()
					if !ok {
						continue
					}
					x, y := a.Load(), b.Load()
					if !l.Validate(v) {
						continue
					}
					if x != y {
						errs <- "validated read observed torn state"
						return
					}
					break
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if a.Load() != int64(writers*iters) || b.Load() != a.Load() {
		t.Fatalf("final counters a=%d b=%d, want %d", a.Load(), b.Load(), writers*iters)
	}
}

// TestConcurrentFreezeExclusion verifies that at most one thread at a time
// can freeze the lock, and the freeze->upgrade->release path is exclusive.
func TestConcurrentFreezeExclusion(t *testing.T) {
	var (
		l      Lock
		inCrit int64
	)
	const goroutines = 8
	const iters = 500
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v, ok := l.ReadVersion()
				if !ok {
					i--
					continue
				}
				if _, ok := l.TryFreeze(v); !ok {
					i--
					continue
				}
				l.UpgradeFrozen()
				inCrit++
				if inCrit != 1 {
					errs <- "mutual exclusion violated"
					l.Release()
					return
				}
				inCrit--
				l.Release()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

// TestVersionBitAlgebra property-tests the flag/sequence packing: any word
// decodes into flags and sequence that re-encode to the same word.
func TestVersionBitAlgebra(t *testing.T) {
	f := func(raw uint64) bool {
		v := Version(raw)
		re := v.Seq() << 3
		if v.Locked() {
			re |= lockedBit
		}
		if v.Frozen() {
			re |= frozenBit
		}
		if v.Orphan() {
			re |= orphanBit
		}
		return re == raw
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceMonotoneUnderReleases(t *testing.T) {
	var l Lock
	prev := l.Current().Seq()
	for i := 0; i < 100; i++ {
		l.Acquire()
		v := l.Release()
		if v.Seq() != prev+1 {
			t.Fatalf("sequence jumped from %d to %d", prev, v.Seq())
		}
		prev = v.Seq()
	}
}
