package seqlock

import "testing"

func BenchmarkReadValidate(b *testing.B) {
	var l Lock
	for i := 0; i < b.N; i++ {
		v, ok := l.ReadVersion()
		if !ok || !l.Validate(v) {
			b.Fatal("uncontended read failed")
		}
	}
}

func BenchmarkAcquireRelease(b *testing.B) {
	var l Lock
	for i := 0; i < b.N; i++ {
		l.Acquire()
		l.Release()
	}
}

func BenchmarkFreezeUpgradeRelease(b *testing.B) {
	var l Lock
	for i := 0; i < b.N; i++ {
		v, _ := l.ReadVersion()
		fv, ok := l.TryFreeze(v)
		if !ok {
			b.Fatal("freeze failed")
		}
		_ = fv
		l.UpgradeFrozen()
		l.Release()
	}
}

func BenchmarkTryUpgrade(b *testing.B) {
	var l Lock
	for i := 0; i < b.N; i++ {
		v, _ := l.ReadVersion()
		if !l.TryUpgrade(v) {
			b.Fatal("upgrade failed")
		}
		l.Release()
	}
}

func BenchmarkReadValidateParallel(b *testing.B) {
	var l Lock
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			v, ok := l.ReadVersion()
			if ok {
				l.Validate(v)
			}
		}
	})
}
