package seqlock

import "testing"

// maxSeqWord is a lock word whose sequence counter is saturated: all
// sequence bits set, all flag bits clear. The next releasing increment
// wraps the counter to zero.
const maxSeqWord = ^uint64(0) &^ flagMask

// TestSequenceCounterWraparound drives the sequence counter across the
// 61-bit overflow boundary and checks that the wrap is confined to the
// counter: flags survive, subsequent acquire/release cycles keep counting
// from zero, and validation still distinguishes pre- and post-wrap
// snapshots.
func TestSequenceCounterWraparound(t *testing.T) {
	t.Run("plain-release", func(t *testing.T) {
		var l Lock
		l.word.Store(maxSeqWord)
		pre, ok := l.ReadVersion()
		if !ok || pre.Seq() != maxSeqWord>>3 {
			t.Fatalf("setup snapshot: %v ok=%t", pre, ok)
		}
		if !l.TryUpgrade(pre) {
			t.Fatal("TryUpgrade at max sequence failed")
		}
		v := l.Release()
		if v.Seq() != 0 {
			t.Fatalf("sequence after wrap = %d, want 0", v.Seq())
		}
		if v.Locked() || v.Frozen() || v.Orphan() {
			t.Fatalf("wrap leaked into flag bits: %v", v)
		}
		// The pre-wrap snapshot must now fail to validate even though the
		// flag bits match: the counter itself changed.
		if l.Validate(pre) {
			t.Fatal("stale pre-wrap snapshot validated after wrap")
		}
		// Counting resumes normally from zero.
		l.Acquire()
		if v = l.Release(); v.Seq() != 1 {
			t.Fatalf("sequence after post-wrap release = %d, want 1", v.Seq())
		}
	})

	t.Run("orphan-preserved", func(t *testing.T) {
		var l Lock
		l.word.Store(maxSeqWord | orphanBit)
		v, ok := l.ReadVersion()
		if !ok || !v.Orphan() {
			t.Fatalf("setup snapshot: %v ok=%t", v, ok)
		}
		l.Acquire()
		v = l.Release()
		if v.Seq() != 0 {
			t.Fatalf("sequence after wrap = %d, want 0", v.Seq())
		}
		if !v.Orphan() {
			t.Fatal("orphan bit lost across wraparound")
		}
		if v.Locked() || v.Frozen() {
			t.Fatalf("unexpected flags after wrap: %v", v)
		}
	})

	t.Run("frozen-upgrade-path", func(t *testing.T) {
		var l Lock
		l.word.Store(maxSeqWord)
		v, _ := l.ReadVersion()
		fv, ok := l.TryFreeze(v)
		if !ok || !fv.Frozen() || fv.Seq() != maxSeqWord>>3 {
			t.Fatalf("TryFreeze at max sequence: %v ok=%t", fv, ok)
		}
		l.UpgradeFrozen()
		v = l.Release()
		if v.Seq() != 0 || v.Frozen() || v.Locked() {
			t.Fatalf("after freeze→upgrade→release across wrap: %v", v)
		}
	})

	t.Run("abort-does-not-wrap", func(t *testing.T) {
		var l Lock
		l.word.Store(maxSeqWord | orphanBit)
		v, _ := l.ReadVersion()
		if !l.TryUpgrade(v) {
			t.Fatal("TryUpgrade failed")
		}
		av := l.Abort()
		// Abort restores the pre-acquisition word: the saturated counter
		// must still be saturated and the old snapshot valid again.
		if av != v {
			t.Fatalf("Abort returned %v, want pre-acquire %v", av, v)
		}
		if !l.Validate(v) {
			t.Fatal("pre-acquire snapshot invalid after Abort")
		}
	})
}

// TestFlagPreservationAcrossCycles walks the orphan and frozen flags through
// every lock/unlock-style transition and checks each one touches exactly the
// bits it is specified to touch.
func TestFlagPreservationAcrossCycles(t *testing.T) {
	t.Run("orphan-across-acquire-release", func(t *testing.T) {
		var l Lock
		l.Acquire()
		l.SetOrphan(true)
		v := l.Release()
		if !v.Orphan() || v.Seq() != 1 {
			t.Fatalf("after set+release: %v", v)
		}
		// Ten modification cycles must keep the flag while advancing seq.
		for i := 0; i < 10; i++ {
			l.Acquire()
			v = l.Release()
		}
		if !v.Orphan() || v.Seq() != 11 {
			t.Fatalf("after 10 cycles: %v", v)
		}
		if !l.IsOrphan() {
			t.Fatal("IsOrphan lost the flag")
		}
		l.Acquire()
		l.SetOrphan(false)
		if v = l.Release(); v.Orphan() {
			t.Fatalf("orphan bit survived clearing: %v", v)
		}
	})

	t.Run("orphan-across-abort", func(t *testing.T) {
		var l Lock
		l.Acquire()
		l.SetOrphan(true)
		l.Release()
		before := l.Current()
		l.Acquire()
		v := l.Abort()
		if v != before {
			t.Fatalf("Abort changed word: %v -> %v", before, v)
		}
		if !v.Orphan() {
			t.Fatal("orphan bit lost across Abort")
		}
	})

	t.Run("orphan-across-freeze-thaw", func(t *testing.T) {
		var l Lock
		l.Acquire()
		l.SetOrphan(true)
		v := l.Release()
		fv, ok := l.TryFreeze(v)
		if !ok || !fv.Frozen() || !fv.Orphan() {
			t.Fatalf("TryFreeze: %v ok=%t", fv, ok)
		}
		if fv.Seq() != v.Seq() {
			t.Fatalf("freeze bumped sequence: %v -> %v", v, fv)
		}
		l.Thaw()
		if cur := l.Current(); cur != v {
			t.Fatalf("Thaw did not restore pre-freeze word: %v, want %v", cur, v)
		}
		// Readers whose snapshot predates the freeze are valid again.
		if !l.Validate(v) {
			t.Fatal("pre-freeze snapshot invalid after Thaw")
		}
	})

	t.Run("orphan-across-freeze-upgrade-release", func(t *testing.T) {
		var l Lock
		l.Acquire()
		l.SetOrphan(true)
		v := l.Release()
		fv, ok := l.TryFreeze(v)
		if !ok {
			t.Fatal("TryFreeze failed")
		}
		l.UpgradeFrozen()
		cur := l.Current()
		if !cur.Locked() || cur.Frozen() || !cur.Orphan() {
			t.Fatalf("after UpgradeFrozen: %v", cur)
		}
		end := l.Release()
		if !end.Orphan() || end.Frozen() || end.Locked() {
			t.Fatalf("after release: %v", end)
		}
		if end.Seq() != fv.Seq()+1 {
			t.Fatalf("sequence advanced by %d, want 1", end.Seq()-fv.Seq())
		}
	})

	t.Run("frozen-node-rejects-other-writers", func(t *testing.T) {
		var l Lock
		v, _ := l.ReadVersion()
		fv, ok := l.TryFreeze(v)
		if !ok {
			t.Fatal("TryFreeze failed")
		}
		// Neither the stale nor the frozen snapshot may upgrade or re-freeze:
		// only the freezer's UpgradeFrozen path is allowed in.
		if l.TryUpgrade(v) {
			t.Fatal("TryUpgrade with stale snapshot succeeded on frozen lock")
		}
		if l.TryUpgrade(fv) {
			t.Fatal("TryUpgrade succeeded on frozen lock")
		}
		if _, ok := l.TryFreeze(fv); ok {
			t.Fatal("double freeze succeeded")
		}
		// Optimistic reads still work and carry the frozen bit.
		rv, ok := l.ReadVersion()
		if !ok || !rv.Frozen() {
			t.Fatalf("ReadVersion on frozen lock: %v ok=%t", rv, ok)
		}
	})

	t.Run("release-clears-frozen-with-locked", func(t *testing.T) {
		var l Lock
		v, _ := l.ReadVersion()
		if _, ok := l.TryFreeze(v); !ok {
			t.Fatal("TryFreeze failed")
		}
		l.UpgradeFrozen()
		end := l.Release()
		if end.Frozen() || end.Locked() {
			t.Fatalf("Release left flags set: %v", end)
		}
		if end.Seq() != v.Seq()+1 {
			t.Fatalf("sequence after release: %v", end)
		}
	})
}
