// Package dbx is a compact single-node in-memory OLTP engine in the mould
// of DBx1000 [Yu et al., VLDB 2014], the system the paper integrates the
// skip vector into for its YCSB evaluation (Figure 6). It reproduces the
// pieces that experiment exercises:
//
//   - one table of fixed-width rows (10 × 64-bit fields, YCSB-style);
//   - an ordered index (pluggable: skip vector, unrolled skip list, plain
//     skip list) as the access path from key to row;
//   - per-row two-phase locking with the NO_WAIT policy: a transaction that
//     hits a lock conflict aborts immediately and retries, so deadlock is
//     impossible;
//   - YCSB transactions: 16 row accesses each, 90% reads / 10% updates,
//     keys drawn from a scrambled Zipfian distribution.
package dbx

import (
	"fmt"
	"sync/atomic"
)

// FieldsPerRow is the YCSB row width (10 fields of 8 bytes).
const FieldsPerRow = 10

// RowID identifies a row in a table's heap.
type RowID int64

// Row is a fixed-width tuple with an embedded reader/writer lock word.
type Row struct {
	lock rwLock
	F    [FieldsPerRow]uint64
}

// rwLock is a word-sized reader/writer spin lock with try-only acquisition
// (NO_WAIT 2PL never blocks): the high bit is the writer flag, the low bits
// count readers.
type rwLock struct {
	word atomic.Uint64
}

const writerBit = uint64(1) << 63

// tryReadLock acquires a shared lock unless a writer holds the word.
func (l *rwLock) tryReadLock() bool {
	for {
		w := l.word.Load()
		if w&writerBit != 0 {
			return false
		}
		if l.word.CompareAndSwap(w, w+1) {
			return true
		}
	}
}

func (l *rwLock) readUnlock() {
	l.word.Add(^uint64(0)) // -1
}

// tryWriteLock acquires the exclusive lock only when the word is free.
func (l *rwLock) tryWriteLock() bool {
	return l.word.CompareAndSwap(0, writerBit)
}

// tryUpgradeLock converts a read lock into the write lock when the caller
// is the sole reader.
func (l *rwLock) tryUpgradeLock() bool {
	return l.word.CompareAndSwap(1, writerBit)
}

func (l *rwLock) writeUnlock() {
	l.word.Store(0)
}

// Index is the ordered access path from primary key to row. Implementations
// must be safe for concurrent use.
type Index interface {
	// Insert maps key→rid; returns false if the key exists.
	Insert(key int64, rid RowID) bool
	// Lookup resolves a key to its row.
	Lookup(key int64) (RowID, bool)
	// Scan calls fn for keys ≥ start in ascending order until fn returns
	// false or the index is exhausted. It is the access path for YCSB-E
	// style scan transactions; fn runs under the index's internal
	// synchronization and must not call back into the index.
	Scan(start int64, fn func(key int64, rid RowID) bool)
	// Name labels the index in benchmark output.
	Name() string
}

// Table is a heap of rows plus a primary index.
type Table struct {
	rows  []Row
	index Index
	used  atomic.Int64
}

// NewTable allocates a table with capacity for n rows using the given
// primary index.
func NewTable(n int64, index Index) *Table {
	return &Table{rows: make([]Row, n), index: index}
}

// InsertRow appends a row with the given key and fields, registering it in
// the primary index. Returns an error when the heap is full or the key is a
// duplicate.
func (t *Table) InsertRow(key int64, fields [FieldsPerRow]uint64) (RowID, error) {
	rid := RowID(t.used.Add(1) - 1)
	if int(rid) >= len(t.rows) {
		t.used.Add(-1)
		return 0, fmt.Errorf("dbx: table full (%d rows)", len(t.rows))
	}
	t.rows[rid].F = fields
	if !t.index.Insert(key, rid) {
		return 0, fmt.Errorf("dbx: duplicate key %d", key)
	}
	return rid, nil
}

// Row returns the row for rid. The caller must hold the row's lock through
// a transaction access.
func (t *Table) Row(rid RowID) *Row { return &t.rows[rid] }

// Len returns the number of rows inserted.
func (t *Table) Len() int64 { return t.used.Load() }

// Index returns the table's primary index.
func (t *Table) Index() Index { return t.index }

// accessKind distinguishes transaction access types.
type accessKind int

const (
	accessRead accessKind = iota + 1
	accessUpdate
	accessScan
)

// Txn is a transaction context implementing strict two-phase locking with
// NO_WAIT conflict handling. It is single-goroutine; reuse between
// transactions via Reset.
type Txn struct {
	table  *Table
	reads  []RowID
	writes []RowID
}

// NewTxn builds a transaction context for a table.
func NewTxn(t *Table) *Txn {
	return &Txn{
		table:  t,
		reads:  make([]RowID, 0, 32),
		writes: make([]RowID, 0, 32),
	}
}

// ErrAbort reports a NO_WAIT lock conflict; the caller should release (via
// the returned state of Abort) and retry the whole transaction.
var ErrAbort = fmt.Errorf("dbx: transaction aborted (lock conflict)")

// holdsWrite reports whether the transaction already write-locked rid.
func (tx *Txn) holdsWrite(rid RowID) bool {
	for _, w := range tx.writes {
		if w == rid {
			return true
		}
	}
	return false
}

// readIndex returns the position of rid in the read set, or -1.
func (tx *Txn) readIndex(rid RowID) int {
	for i, r := range tx.reads {
		if r == rid {
			return i
		}
	}
	return -1
}

// lockRead takes (or reuses) a shared lock on rid for this transaction.
func (tx *Txn) lockRead(rid RowID) bool {
	if tx.holdsWrite(rid) || tx.readIndex(rid) >= 0 {
		return true // already covered by a lock this transaction holds
	}
	if !tx.table.Row(rid).lock.tryReadLock() {
		return false
	}
	tx.reads = append(tx.reads, rid)
	return true
}

// lockWrite takes (or upgrades to) the exclusive lock on rid.
func (tx *Txn) lockWrite(rid RowID) bool {
	if tx.holdsWrite(rid) {
		return true
	}
	row := tx.table.Row(rid)
	if i := tx.readIndex(rid); i >= 0 {
		// Upgrade our own read lock; fails (NO_WAIT) if other readers
		// share the row.
		if !row.lock.tryUpgradeLock() {
			return false
		}
		last := len(tx.reads) - 1
		tx.reads[i] = tx.reads[last]
		tx.reads = tx.reads[:last]
	} else if !row.lock.tryWriteLock() {
		return false
	}
	tx.writes = append(tx.writes, rid)
	return true
}

// Read looks up key, read-locks its row, and returns the row pointer. The
// lock is held until Commit or Abort.
func (tx *Txn) Read(key int64) (*Row, error) {
	rid, ok := tx.table.index.Lookup(key)
	if !ok {
		return nil, fmt.Errorf("dbx: key %d not found", key)
	}
	if !tx.lockRead(rid) {
		return nil, ErrAbort
	}
	return tx.table.Row(rid), nil
}

// Update looks up key, write-locks its row (upgrading a read lock this
// transaction already holds), and returns the row pointer for modification.
// The lock is held until Commit or Abort.
func (tx *Txn) Update(key int64) (*Row, error) {
	rid, ok := tx.table.index.Lookup(key)
	if !ok {
		return nil, fmt.Errorf("dbx: key %d not found", key)
	}
	if !tx.lockWrite(rid) {
		return nil, ErrAbort
	}
	return tx.table.Row(rid), nil
}

// Scan read-locks up to n rows with keys ≥ start (YCSB-E style) and calls
// fn for each. On a NO_WAIT conflict it returns ErrAbort; locks already
// taken remain held until the caller aborts. Row locks are try-only and the
// index's internal locks are released before Scan returns, so no blocking
// cycle can form. Note that, like DBx1000, the engine provides no phantom
// protection: the scanned window is locked row-wise, not predicate-wise.
func (tx *Txn) Scan(start int64, n int, fn func(key int64, row *Row)) error {
	conflict := false
	tx.table.index.Scan(start, func(key int64, rid RowID) bool {
		if n <= 0 {
			return false
		}
		if !tx.lockRead(rid) {
			conflict = true
			return false
		}
		fn(key, tx.table.Row(rid))
		n--
		return n > 0
	})
	if conflict {
		return ErrAbort
	}
	return nil
}

// Commit releases every lock (strict 2PL: all locks drop at commit).
func (tx *Txn) Commit() {
	tx.releaseAll()
}

// Abort releases every lock without further effect; YCSB updates are
// idempotent overwrites so no undo log is needed for this workload. (A
// general engine would roll back here.)
func (tx *Txn) Abort() {
	tx.releaseAll()
}

func (tx *Txn) releaseAll() {
	for _, rid := range tx.reads {
		tx.table.Row(rid).lock.readUnlock()
	}
	for _, rid := range tx.writes {
		tx.table.Row(rid).lock.writeUnlock()
	}
	tx.reads = tx.reads[:0]
	tx.writes = tx.writes[:0]
}

// Locked reports the number of locks currently held (tests).
func (tx *Txn) Locked() int { return len(tx.reads) + len(tx.writes) }
