package dbx

import (
	"errors"
	"sync"
	"testing"

	"skipvector/internal/workload"
)

func testConfig() YCSBConfig {
	cfg := DefaultYCSBConfig()
	cfg.Rows = 4096
	cfg.TxnsPerThread = 300
	cfg.Threads = 4
	return cfg
}

func TestRWLock(t *testing.T) {
	var l rwLock
	if !l.tryReadLock() || !l.tryReadLock() {
		t.Fatal("shared read locks should coexist")
	}
	if l.tryWriteLock() {
		t.Fatal("write lock granted over readers")
	}
	l.readUnlock()
	l.readUnlock()
	if !l.tryWriteLock() {
		t.Fatal("write lock denied on free lock")
	}
	if l.tryReadLock() {
		t.Fatal("read lock granted over writer")
	}
	if l.tryWriteLock() {
		t.Fatal("second write lock granted")
	}
	l.writeUnlock()
	if !l.tryReadLock() {
		t.Fatal("read lock denied after write unlock")
	}
	l.readUnlock()
}

func TestTableInsertAndLookup(t *testing.T) {
	tab := NewTable(100, NewSkipVectorIndex(100))
	var fields [FieldsPerRow]uint64
	fields[0] = 42
	rid, err := tab.InsertRow(7, fields)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Row(rid).F[0] != 42 {
		t.Fatal("row fields lost")
	}
	if _, err := tab.InsertRow(7, fields); err == nil {
		t.Fatal("duplicate key accepted")
	}
	got, ok := tab.Index().Lookup(7)
	if !ok || got != rid {
		t.Fatalf("index lookup = %d,%t", got, ok)
	}
	if tab.Len() < 1 {
		t.Fatal("Len wrong")
	}
}

func TestTableFull(t *testing.T) {
	tab := NewTable(2, NewSkipVectorIndex(2))
	var fields [FieldsPerRow]uint64
	for k := int64(0); k < 2; k++ {
		if _, err := tab.InsertRow(k, fields); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tab.InsertRow(99, fields); err == nil {
		t.Fatal("overfull insert accepted")
	}
}

func TestTxn2PL(t *testing.T) {
	tab := NewTable(10, NewSkipVectorIndex(10))
	var fields [FieldsPerRow]uint64
	for k := int64(0); k < 10; k++ {
		tab.InsertRow(k, fields)
	}
	tx1 := NewTxn(tab)
	tx2 := NewTxn(tab)

	// Shared readers coexist.
	if _, err := tx1.Read(3); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Read(3); err != nil {
		t.Fatal(err)
	}
	// Writer conflicts with readers (NO_WAIT → ErrAbort).
	tx3 := NewTxn(tab)
	if _, err := tx3.Update(3); !errors.Is(err, ErrAbort) {
		t.Fatalf("Update over readers: %v", err)
	}
	tx3.Abort()
	tx1.Commit()
	tx2.Commit()

	// Now the writer succeeds, and blocks a reader.
	if _, err := tx3.Update(3); err != nil {
		t.Fatal(err)
	}
	tx4 := NewTxn(tab)
	if _, err := tx4.Read(3); !errors.Is(err, ErrAbort) {
		t.Fatalf("Read over writer: %v", err)
	}
	tx4.Abort()
	tx3.Commit()
	if tx3.Locked() != 0 {
		t.Fatal("locks leaked after commit")
	}
}

func TestTxnMissingKey(t *testing.T) {
	tab := NewTable(10, NewSkipVectorIndex(10))
	tx := NewTxn(tab)
	if _, err := tx.Read(5); err == nil || errors.Is(err, ErrAbort) {
		t.Fatalf("missing key error = %v", err)
	}
	tx.Abort()
}

func TestUpdateVisibleAfterCommit(t *testing.T) {
	tab := NewTable(10, NewSkipVectorIndex(10))
	var fields [FieldsPerRow]uint64
	tab.InsertRow(1, fields)
	tx := NewTxn(tab)
	row, err := tx.Update(1)
	if err != nil {
		t.Fatal(err)
	}
	row.F[4] = 777
	tx.Commit()
	tx2 := NewTxn(tab)
	row2, err := tx2.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if row2.F[4] != 777 {
		t.Fatal("committed update not visible")
	}
	tx2.Commit()
}

func TestLoadTableAllIndexes(t *testing.T) {
	cfg := testConfig()
	for _, mk := range []func(int64) Index{
		NewSkipVectorIndex, NewUnrolledIndex, NewSkipListIndex,
	} {
		idx := mk(cfg.Rows)
		tab, err := LoadTable(cfg, idx)
		if err != nil {
			t.Fatalf("%s: %v", idx.Name(), err)
		}
		if tab.Len() != cfg.Rows {
			t.Fatalf("%s: loaded %d rows", idx.Name(), tab.Len())
		}
		for _, k := range []int64{0, cfg.Rows / 2, cfg.Rows - 1} {
			if _, ok := idx.Lookup(k); !ok {
				t.Fatalf("%s: key %d missing", idx.Name(), k)
			}
		}
	}
}

func TestRunYCSBCommitsAll(t *testing.T) {
	cfg := testConfig()
	tab, err := LoadTable(cfg, NewSkipVectorIndex(cfg.Rows))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunYCSB(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Threads * cfg.TxnsPerThread)
	if res.Committed != want {
		t.Fatalf("committed %d, want %d", res.Committed, want)
	}
	if res.Throughput <= 0 {
		t.Fatal("non-positive throughput")
	}
}

func TestRunYCSBHighSkewProgresses(t *testing.T) {
	cfg := testConfig()
	cfg.Theta = 0.9
	cfg.TxnsPerThread = 150
	tab, err := LoadTable(cfg, NewSkipVectorIndex(cfg.Rows))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunYCSB(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Threads * cfg.TxnsPerThread)
	if res.Committed != want {
		t.Fatalf("committed %d, want %d (aborts %d)", res.Committed, want, res.Aborts)
	}
}

func TestYCSBConfigValidation(t *testing.T) {
	bad := []func(*YCSBConfig){
		func(c *YCSBConfig) { c.Rows = 0 },
		func(c *YCSBConfig) { c.TxnsPerThread = 0 },
		func(c *YCSBConfig) { c.AccessesPerTxn = 0 },
		func(c *YCSBConfig) { c.ReadPct = 101 },
		func(c *YCSBConfig) { c.Theta = 1.0 },
		func(c *YCSBConfig) { c.Threads = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultYCSBConfig()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestConcurrentTxnIntegrity checks a bank-transfer-style invariant: each
// transaction moves value between two rows under 2PL; the global sum must be
// conserved.
func TestConcurrentTxnIntegrity(t *testing.T) {
	const rows = 64
	tab := NewTable(rows, NewSkipVectorIndex(rows))
	var fields [FieldsPerRow]uint64
	fields[0] = 100
	for k := int64(0); k < rows; k++ {
		tab.InsertRow(k, fields)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := workload.NewRNG(seed)
			tx := NewTxn(tab)
			for i := 0; i < 2000; i++ {
				a := rng.Intn(rows)
				b := rng.Intn(rows)
				if a == b {
					continue
				}
				ra, err := tx.Update(a)
				if err != nil {
					tx.Abort()
					continue
				}
				rb, err := tx.Update(b)
				if err != nil {
					tx.Abort()
					continue
				}
				if ra.F[0] > 0 {
					ra.F[0]--
					rb.F[0]++
				}
				tx.Commit()
			}
		}(uint64(w) + 1)
	}
	wg.Wait()
	var sum uint64
	for k := int64(0); k < rows; k++ {
		rid, _ := tab.Index().Lookup(k)
		sum += tab.Row(rid).F[0]
	}
	if sum != rows*100 {
		t.Fatalf("sum = %d, want %d", sum, rows*100)
	}
}

func TestTxnScan(t *testing.T) {
	tab := NewTable(100, NewSkipVectorIndex(100))
	var fields [FieldsPerRow]uint64
	for k := int64(0); k < 100; k++ {
		fields[0] = uint64(k * 3)
		tab.InsertRow(k, fields)
	}
	tx := NewTxn(tab)
	var keys []int64
	err := tx.Scan(10, 5, func(key int64, row *Row) {
		keys = append(keys, key)
		if row.F[0] != uint64(key*3) {
			t.Fatalf("row payload mismatch at %d", key)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 11, 12, 13, 14}
	if len(keys) != len(want) {
		t.Fatalf("scanned %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("scanned %v, want %v", keys, want)
		}
	}
	if tx.Locked() != 5 {
		t.Fatalf("scan holds %d locks, want 5", tx.Locked())
	}
	tx.Commit()
	if tx.Locked() != 0 {
		t.Fatal("locks leaked")
	}
}

func TestTxnScanConflict(t *testing.T) {
	tab := NewTable(10, NewSkipVectorIndex(10))
	var fields [FieldsPerRow]uint64
	for k := int64(0); k < 10; k++ {
		tab.InsertRow(k, fields)
	}
	blocker := NewTxn(tab)
	if _, err := blocker.Update(5); err != nil {
		t.Fatal(err)
	}
	tx := NewTxn(tab)
	err := tx.Scan(3, 5, func(int64, *Row) {})
	if !errors.Is(err, ErrAbort) {
		t.Fatalf("scan over write lock: %v", err)
	}
	tx.Abort()
	blocker.Commit()
}

func TestTxnSelfLockReuse(t *testing.T) {
	tab := NewTable(10, NewSkipVectorIndex(10))
	var fields [FieldsPerRow]uint64
	for k := int64(0); k < 10; k++ {
		tab.InsertRow(k, fields)
	}
	tx := NewTxn(tab)
	// Read then upgrade to write on the same row.
	if _, err := tx.Read(4); err != nil {
		t.Fatal(err)
	}
	row, err := tx.Update(4)
	if err != nil {
		t.Fatalf("upgrade failed: %v", err)
	}
	row.F[0] = 9
	// Write then read the same row.
	if _, err := tx.Read(4); err != nil {
		t.Fatal(err)
	}
	// Scan crossing the written row.
	if err := tx.Scan(2, 5, func(int64, *Row) {}); err != nil {
		t.Fatal(err)
	}
	// Double update.
	if _, err := tx.Update(4); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if tx.Locked() != 0 {
		t.Fatal("locks leaked after self-lock reuse")
	}
	// The lock word must be fully released.
	tx2 := NewTxn(tab)
	if _, err := tx2.Update(4); err != nil {
		t.Fatalf("row still locked after commit: %v", err)
	}
	tx2.Commit()
}

func TestTxnUpgradeConflictsWithOtherReaders(t *testing.T) {
	tab := NewTable(4, NewSkipVectorIndex(4))
	var fields [FieldsPerRow]uint64
	tab.InsertRow(1, fields)
	tx1, tx2 := NewTxn(tab), NewTxn(tab)
	if _, err := tx1.Read(1); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Read(1); err != nil {
		t.Fatal(err)
	}
	if _, err := tx1.Update(1); !errors.Is(err, ErrAbort) {
		t.Fatalf("upgrade over another reader: %v", err)
	}
	tx1.Abort()
	tx2.Commit()
}

func TestRunYCSBWithScans(t *testing.T) {
	cfg := testConfig()
	cfg.ReadPct = 70
	cfg.ScanPct = 20
	cfg.ScanLen = 8
	cfg.TxnsPerThread = 150
	tab, err := LoadTable(cfg, NewSkipVectorIndex(cfg.Rows))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunYCSB(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(cfg.Threads * cfg.TxnsPerThread)
	if res.Committed != want {
		t.Fatalf("committed %d, want %d (aborts %d)", res.Committed, want, res.Aborts)
	}
}

func TestScanConfigValidation(t *testing.T) {
	cfg := DefaultYCSBConfig()
	cfg.ScanPct = 20 // ReadPct 90 + 20 > 100
	if cfg.Validate() == nil {
		t.Fatal("over-100 mix accepted")
	}
	cfg.ReadPct = 70
	cfg.ScanLen = 0
	if cfg.Validate() == nil {
		t.Fatal("scan without ScanLen accepted")
	}
	cfg.ScanLen = 8
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

// hideBulk wraps an index to suppress its BulkLoader implementation so the
// per-row load path can be compared against the bulk path.
type hideBulk struct{ Index }

func TestLoadTableBulkMatchesIncremental(t *testing.T) {
	cfg := testConfig()
	cfg.Rows = 2048
	fast, err := LoadTable(cfg, NewSkipVectorIndex(cfg.Rows))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := LoadTable(cfg, &hideBulk{Index: NewSkipVectorIndex(cfg.Rows)})
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < cfg.Rows; k += 7 {
		fr, fok := fast.Index().Lookup(k)
		sr, sok := slow.Index().Lookup(k)
		if !fok || !sok {
			t.Fatalf("key %d missing (fast=%t slow=%t)", k, fok, sok)
		}
		// Same deterministic RNG stream: row contents must be identical.
		if fast.Row(fr).F != slow.Row(sr).F {
			t.Fatalf("row %d differs between load paths", k)
		}
	}
}
