package dbx

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"skipvector/internal/workload"
)

// YCSBConfig describes the Figure 6 workload: a single table, transactions
// of AccessesPerTxn row touches, ReadPct% of them reads, keys Zipfian.
type YCSBConfig struct {
	// Rows is the table size (paper: 24M; scaled reproductions use less).
	Rows int64
	// TxnsPerThread is the per-worker transaction count (paper: 100K).
	TxnsPerThread int
	// AccessesPerTxn is the number of row touches per transaction (16).
	AccessesPerTxn int
	// ReadPct is the percentage of accesses that are reads (90).
	ReadPct int
	// ScanPct is the percentage of accesses that are short scans (YCSB-E
	// style; 0 in the paper's Figure 6). Scans are carved out of the read
	// share: ReadPct+ScanPct must not exceed 100.
	ScanPct int
	// ScanLen is the number of rows per scan access (default 16 when
	// ScanPct > 0).
	ScanLen int
	// Theta is the Zipfian skew (0.1 / 0.6 / 0.9 in the paper).
	Theta float64
	// Threads is the worker count.
	Threads int
	// Seed drives all randomness.
	Seed uint64
	// MaxRetries bounds NO_WAIT retry storms per transaction; the
	// transaction is counted as aborted permanently beyond it. Zero means
	// retry forever (DBx1000's behaviour).
	MaxRetries int
}

// DefaultYCSBConfig mirrors the paper's Figure 6 parameters scaled to a
// single-machine reproduction.
func DefaultYCSBConfig() YCSBConfig {
	return YCSBConfig{
		Rows:           1 << 20,
		TxnsPerThread:  10_000,
		AccessesPerTxn: 16,
		ReadPct:        90,
		Theta:          0.6,
		Threads:        4,
		Seed:           0xdb1000,
	}
}

// Validate checks the workload parameters.
func (c *YCSBConfig) Validate() error {
	switch {
	case c.Rows < 1:
		return fmt.Errorf("dbx: Rows %d < 1", c.Rows)
	case c.TxnsPerThread < 1:
		return fmt.Errorf("dbx: TxnsPerThread %d < 1", c.TxnsPerThread)
	case c.AccessesPerTxn < 1:
		return fmt.Errorf("dbx: AccessesPerTxn %d < 1", c.AccessesPerTxn)
	case c.ReadPct < 0 || c.ReadPct > 100:
		return fmt.Errorf("dbx: ReadPct %d outside [0,100]", c.ReadPct)
	case c.ScanPct < 0 || c.ReadPct+c.ScanPct > 100:
		return fmt.Errorf("dbx: ScanPct %d invalid with ReadPct %d", c.ScanPct, c.ReadPct)
	case c.ScanPct > 0 && c.ScanLen < 1:
		return fmt.Errorf("dbx: ScanPct set with ScanLen %d", c.ScanLen)
	case c.Theta < 0 || c.Theta >= 1:
		return fmt.Errorf("dbx: Theta %v outside [0,1)", c.Theta)
	case c.Threads < 1:
		return fmt.Errorf("dbx: Threads %d < 1", c.Threads)
	}
	return nil
}

// YCSBResult reports a run's outcome.
type YCSBResult struct {
	Committed  int64
	Aborts     int64 // NO_WAIT conflicts encountered (retries)
	Elapsed    time.Duration
	Throughput float64 // committed transactions per second
}

// BulkLoader is the optional fast-load interface an Index may implement:
// given ascending keys and their row IDs, build the index in one pass. It
// is only called during table load, before the index is shared.
type BulkLoader interface {
	BulkLoad(keys []int64, rids []RowID) error
}

// LoadTable builds and populates a table with cfg.Rows rows keyed 0..Rows-1
// over the given index. Indexes implementing BulkLoader are built in one
// O(n) pass; others receive per-row inserts.
func LoadTable(cfg YCSBConfig, index Index) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := NewTable(cfg.Rows, index)
	rng := workload.NewRNG(cfg.Seed)
	var fields [FieldsPerRow]uint64

	if bl, ok := index.(BulkLoader); ok {
		keys := make([]int64, cfg.Rows)
		rids := make([]RowID, cfg.Rows)
		for k := int64(0); k < cfg.Rows; k++ {
			for f := range fields {
				fields[f] = rng.Uint64()
			}
			rid := RowID(t.used.Add(1) - 1)
			t.rows[rid].F = fields
			keys[k], rids[k] = k, rid
		}
		if err := bl.BulkLoad(keys, rids); err != nil {
			return nil, err
		}
		return t, nil
	}

	for k := int64(0); k < cfg.Rows; k++ {
		for f := range fields {
			fields[f] = rng.Uint64()
		}
		if _, err := t.InsertRow(k, fields); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// RunYCSB executes the workload against a pre-loaded table and reports
// committed-transaction throughput, the paper's Figure 6 metric.
func RunYCSB(t *Table, cfg YCSBConfig) (YCSBResult, error) {
	if err := cfg.Validate(); err != nil {
		return YCSBResult{}, err
	}
	type stats struct {
		committed, aborts int64
	}
	results := make([]stats, cfg.Threads)
	root := workload.NewRNG(cfg.Seed ^ 0x5ca1ab1e)
	shared := workload.NewZipfKeys(root.Split(), cfg.Rows, cfg.Theta, cfg.Seed)

	var wg sync.WaitGroup
	begin := time.Now()
	for w := 0; w < cfg.Threads; w++ {
		rng := root.Split()
		keys := shared.WithRNG(rng)
		wg.Add(1)
		go func(id int, rng *workload.RNG, keys workload.KeyGen) {
			defer wg.Done()
			tx := NewTxn(t)
			var st stats
			accessKeys := make([]int64, cfg.AccessesPerTxn)
			kinds := make([]accessKind, cfg.AccessesPerTxn)
			for i := 0; i < cfg.TxnsPerThread; i++ {
				// Pre-draw the transaction's access set so retries replay
				// the same logical transaction (as DBx1000 does). Keys are
				// deduplicated within a transaction: with NO_WAIT locking a
				// repeated key would self-conflict (DBx1000 instead merges
				// duplicate accesses onto one lock request).
				for a := range accessKeys {
					for {
						k := keys.Next()
						dup := false
						for b := 0; b < a; b++ {
							if accessKeys[b] == k {
								dup = true
								break
							}
						}
						if !dup {
							accessKeys[a] = k
							break
						}
					}
					r := int(rng.Intn(100))
					switch {
					case r < cfg.ReadPct:
						kinds[a] = accessRead
					case r < cfg.ReadPct+cfg.ScanPct:
						kinds[a] = accessScan
					default:
						kinds[a] = accessUpdate
					}
				}
				retries := 0
				for {
					if ok := runOneTxn(tx, cfg, accessKeys, kinds, rng); ok {
						st.committed++
						break
					}
					st.aborts++
					retries++
					if cfg.MaxRetries > 0 && retries >= cfg.MaxRetries {
						break
					}
					// Yield before retrying so the conflicting holder can
					// finish; NO_WAIT otherwise livelocks on oversubscribed
					// schedulers.
					runtime.Gosched()
				}
			}
			results[id] = st
		}(w, rng, keys)
	}
	wg.Wait()
	elapsed := time.Since(begin)

	var out YCSBResult
	out.Elapsed = elapsed
	for _, st := range results {
		out.Committed += st.committed
		out.Aborts += st.aborts
	}
	out.Throughput = float64(out.Committed) / elapsed.Seconds()
	return out, nil
}

// runOneTxn executes one YCSB transaction under strict 2PL, returning false
// on a NO_WAIT abort.
func runOneTxn(tx *Txn, cfg YCSBConfig, keys []int64, kinds []accessKind, rng *workload.RNG) bool {
	var sink uint64
	for a, k := range keys {
		switch kinds[a] {
		case accessRead:
			row, err := tx.Read(k)
			if err != nil {
				tx.Abort()
				return false
			}
			sink += row.F[int(rng.Intn(FieldsPerRow))]
		case accessScan:
			err := tx.Scan(k, cfg.ScanLen, func(_ int64, row *Row) {
				sink += row.F[0]
			})
			if err != nil {
				tx.Abort()
				return false
			}
		default:
			row, err := tx.Update(k)
			if err != nil {
				tx.Abort()
				return false
			}
			row.F[int(rng.Intn(FieldsPerRow))] = rng.Uint64()
		}
	}
	_ = sink
	tx.Commit()
	return true
}
