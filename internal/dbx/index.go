package dbx

import (
	"skipvector/internal/core"
)

// svIndex adapts a skip vector configuration as a primary index. Row IDs
// are stored directly as values.
type svIndex struct {
	name string
	m    *core.Map[RowID]
}

var _ Index = (*svIndex)(nil)

// newSVIndex builds an index over a skip vector with the given chunking.
func newSVIndex(name string, rows int64, targetData, targetIndex int) *svIndex {
	cfg := core.DefaultConfig()
	cfg.TargetDataVectorSize = targetData
	cfg.TargetIndexVectorSize = targetIndex
	cfg.Reclaim = core.ReclaimHazard
	// Size the layer count for the expected row count.
	cfg.LayerCount = 2
	base := float64(targetIndex)
	if base < 2 {
		base = 2
	}
	for nodes := float64(rows) / float64(targetData); nodes > base &&
		cfg.LayerCount < core.MaxLayers; cfg.LayerCount++ {
		nodes /= base
	}
	m, err := core.NewMap[RowID](cfg)
	if err != nil {
		panic("dbx: " + err.Error())
	}
	return &svIndex{name: name, m: m}
}

// NewSkipVectorIndex is the paper's "SV-HP" index: chunked data and index
// layers with hazard-pointer reclamation.
func NewSkipVectorIndex(rows int64) Index {
	return newSVIndex("SV-HP", rows, 32, 32)
}

// NewUnrolledIndex is the "USL-HP" comparator: chunked data layer only.
func NewUnrolledIndex(rows int64) Index {
	return newSVIndex("USL-HP", rows, 32, 1)
}

// NewSkipListIndex is the "SL-HP" comparator: no chunking at all.
func NewSkipListIndex(rows int64) Index {
	return newSVIndex("SL-HP", rows, 1, 1)
}

// Insert implements Index.
func (ix *svIndex) Insert(key int64, rid RowID) bool {
	r := rid
	return ix.m.Insert(key, &r)
}

// Lookup implements Index.
func (ix *svIndex) Lookup(key int64) (RowID, bool) {
	p, ok := ix.m.Lookup(key)
	if !ok {
		return 0, false
	}
	return *p, true
}

// Scan implements Index via the skip vector's linearizable range query.
func (ix *svIndex) Scan(start int64, fn func(key int64, rid RowID) bool) {
	ix.m.RangeQuery(start, core.MaxKey-1, func(k int64, p *RowID) bool {
		return fn(k, *p)
	})
}

// Name implements Index.
func (ix *svIndex) Name() string { return ix.name }

// BulkLoad implements BulkLoader by replacing the inner map with a bulk-
// built one. It must be called before the index is shared across
// goroutines (i.e., during table load).
func (ix *svIndex) BulkLoad(keys []int64, rids []RowID) error {
	cfg := ix.m.Config()
	ptrs := make([]*RowID, len(rids))
	for i := range rids {
		r := rids[i]
		ptrs[i] = &r
	}
	m, err := core.BulkLoad(cfg, keys, ptrs)
	if err != nil {
		return err
	}
	ix.m = m
	return nil
}
