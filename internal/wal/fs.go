// Package wal is the skip vector's durable chunk log: an append-only,
// CRC32C-framed record log with group commit, checkpointing through pinned
// snapshots, and crash recovery that replays through the bulk-load fast path.
//
// The log's unit of serialization mirrors the structure's unit of locality:
// a checkpoint is a sequence of sorted chunk images (one frame per chunk-sized
// key run), and the tail between checkpoints is the sequence of committed
// operations in linearization order. Batch commit units map one-to-one onto
// ApplyBatch calls — a unit's part frames are only replayed when its commit
// marker made it to the log, so batch atomicity survives crashes.
//
// Layout of a log directory:
//
//	MANIFEST            — the segment catalog; swapped atomically by rename
//	seg-%012d.wal       — op segments, replayed in manifest order
//	ckpt-%012d.wal      — at most one live checkpoint of chunk images
//
// Everything goes through the FS interface so the crash campaign can run the
// whole stack against an in-memory filesystem with injected kills and torn
// writes (memfs.go); production uses the os-backed implementation below.
package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem seam. Implementations must make Rename atomic with
// respect to crashes (the manifest swap relies on it) and must persist a
// file's contents on Sync.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// OpenAppend opens an existing file for appending.
	OpenAppend(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// ReadDir lists the file names (not paths) inside dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
}

// File is the per-file handle surface the log needs: sequential append
// writes, random reads for recovery, fsync, and close.
type File interface {
	io.Writer
	io.ReaderAt
	// Size returns the file's current length in bytes.
	Size() (int64, error)
	// Sync forces the file's contents to stable storage.
	Sync() error
	Close() error
}

// osFS is the production FS, a thin veneer over package os.
type osFS struct{}

// OSFS returns the operating-system-backed filesystem.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Rename(oldname, newname string) error {
	if err := os.Rename(oldname, newname); err != nil {
		return err
	}
	// Persist the directory entry: without this a crash can forget the
	// rename even though both files' contents were fsynced.
	return syncDir(filepath.Dir(newname))
}

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// osFile adapts *os.File to the File interface.
type osFile struct{ f *os.File }

func (o osFile) Write(p []byte) (int, error)             { return o.f.Write(p) }
func (o osFile) ReadAt(p []byte, off int64) (int, error) { return o.f.ReadAt(p, off) }
func (o osFile) Sync() error                             { return o.f.Sync() }
func (o osFile) Close() error                            { return o.f.Close() }

func (o osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
