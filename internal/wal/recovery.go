package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path"

	"skipvector/internal/vectormap"
)

// ErrCorruptCheckpoint reports damage inside a manifest-referenced
// checkpoint file. Unlike a torn op-segment tail — which is the expected
// shape of a crash and is truncated away — a committed checkpoint was
// fsynced before the manifest swap, so corruption there means the storage
// lied; recovery refuses to guess.
var ErrCorruptCheckpoint = errors.New("wal: corrupt checkpoint")

// Recovery is what Open found in the log. The caller rebuilds its map from
// the checkpoint image (sorted, bulk-loadable) and then applies Tail in
// order; both are already filtered for batch atomicity.
type Recovery struct {
	// CheckpointKeys/CheckpointVals are the checkpoint's live mappings in
	// strictly ascending key order (empty without a checkpoint).
	CheckpointKeys []int64
	CheckpointVals [][]byte
	// Tail holds the op records after the checkpoint, in log order, with
	// parts of uncommitted batch units dropped and commit markers elided.
	Tail []Record
	// Truncated reports that a torn or corrupt frame cut the scan short;
	// TruncatedSegment/TruncatedOffset locate the cut (the log was truncated
	// there and later segments discarded), TruncatedBytes counts the loss.
	Truncated        bool
	TruncatedSegment string
	TruncatedOffset  int64
	TruncatedBytes   int64
	// ScannedRecords counts intact frames; ReplayedRecords those that
	// contribute to the recovered state (op frames and committed batch
	// frames, markers included); DroppedRecords the uncommitted batch parts.
	// ScannedRecords == ReplayedRecords + DroppedRecords always holds.
	ScannedRecords  uint64
	ReplayedRecords uint64
	DroppedRecords  uint64
}

// recover loads the manifest, reads the checkpoint, scans the op segments
// (truncating at the first corrupt frame), resolves batch units, garbage-
// collects unreferenced files, and leaves l open for appending.
func (l *Log) recover() (*Recovery, error) {
	mf, missing, err := readManifest(l.fs, l.dir)
	if err != nil {
		return nil, err
	}
	rec := &Recovery{TruncatedOffset: -1}

	// Seed the id allocator past every file ever seen, referenced or not, so
	// a new segment can never collide with a stale file about to be GCed.
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		if id, ok := fileID(n); ok && id >= l.nextID {
			l.nextID = id + 1
		}
	}
	if l.nextID == 0 {
		l.nextID = 1
	}

	if missing {
		// Fresh directory (or one that crashed before its first manifest —
		// nothing was ever acknowledged, so starting empty is exact).
		l.mf = &manifest{}
		if err := l.openNewTailLocked(); err != nil {
			return nil, err
		}
		l.gcUnreferenced()
		return rec, nil
	}
	l.mf = mf

	if mf.checkpoint != "" {
		keys, vals, err := l.readCheckpoint(mf.checkpoint)
		if err != nil {
			return nil, err
		}
		rec.CheckpointKeys, rec.CheckpointVals = keys, vals
	}

	// Scan op segments in manifest order, stopping at the first bad frame.
	type scanStop struct {
		seg  string
		segi int
		off  int64
	}
	var stop *scanStop
	var records []Record
	maxUnit := uint64(0)
scan:
	for i, seg := range mf.segments {
		f, err := l.fs.Open(path.Join(l.dir, seg))
		if err != nil {
			return nil, fmt.Errorf("wal: open segment %s: %w", seg, err)
		}
		sc, err := newFrameScanner(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		for {
			start := sc.off
			payload, ok, err := sc.next()
			if errors.Is(err, errBadFrame) {
				stop = &scanStop{seg: seg, segi: i, off: start}
				f.Close()
				break scan
			}
			if err != nil {
				f.Close()
				return nil, err
			}
			if !ok {
				break
			}
			r, derr := decodeRecord(payload)
			if derr != nil {
				// The CRC matched but the body is nonsense: treat exactly
				// like a torn frame — truncate here.
				stop = &scanStop{seg: seg, segi: i, off: start}
				f.Close()
				break scan
			}
			if r.Unit > maxUnit {
				maxUnit = r.Unit
			}
			records = append(records, r)
		}
		f.Close()
	}

	// Batch atomicity: a unit's parts replay only when its commit marker was
	// scanned. Parts always precede their marker in the log, so a marker in
	// hand proves the whole unit is in hand.
	committed := make(map[uint64]bool)
	for _, r := range records {
		if r.Kind == kindBatchCommit {
			committed[r.Unit] = true
		}
	}
	rec.ScannedRecords = uint64(len(records))
	for _, r := range records {
		switch r.Kind {
		case kindOps:
			rec.ReplayedRecords++
			rec.Tail = append(rec.Tail, r)
		case kindBatchPart:
			if committed[r.Unit] {
				rec.ReplayedRecords++
				rec.Tail = append(rec.Tail, r)
			} else {
				rec.DroppedRecords++
			}
		case kindBatchCommit:
			rec.ReplayedRecords++ // the marker committed its unit
		}
	}
	// Reused unit ids must never adopt an earlier life's orphaned parts.
	l.unitSeq.Store(maxUnit)

	if stop != nil {
		rec.Truncated = true
		rec.TruncatedSegment = stop.seg
		rec.TruncatedOffset = stop.off
		// Cut the torn segment at the last good frame and discard every
		// later segment: nothing after the first bad frame is trustworthy,
		// and nothing after it can have been acknowledged under any policy
		// (acks follow appends, and appends are ordered).
		if sz := l.fileSize(stop.seg); sz > stop.off {
			rec.TruncatedBytes += sz - stop.off
		}
		if err := l.fs.Truncate(path.Join(l.dir, stop.seg), stop.off); err != nil {
			return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		for _, seg := range mf.segments[stop.segi+1:] {
			rec.TruncatedBytes += max(l.fileSize(seg), 0)
		}
		if stop.segi != len(mf.segments)-1 {
			next := &manifest{checkpoint: mf.checkpoint, segments: append([]string(nil), mf.segments[:stop.segi+1]...)}
			if err := writeManifest(l.fs, l.dir, next); err != nil {
				return nil, err
			}
			l.mf = next
		}
		l.c.recTruncs.Add(1)
		l.c.recTruncBytes.Add(uint64(rec.TruncatedBytes))
	}

	// Open the tail segment for appending.
	tail := l.mf.segments[len(l.mf.segments)-1]
	f, err := l.fs.OpenAppend(path.Join(l.dir, tail))
	if err != nil {
		return nil, fmt.Errorf("wal: open tail segment: %w", err)
	}
	sz, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	l.tailFile = f
	l.tailSize = sz

	l.gcUnreferenced()
	l.c.recScanned.Store(rec.ScannedRecords)
	l.c.recReplayed.Store(rec.ReplayedRecords)
	l.c.recDropped.Store(rec.DroppedRecords)
	return rec, nil
}

// readCheckpoint loads and validates one checkpoint file: a start frame,
// chunk images with globally ascending keys, and an end frame whose totals
// match. Any deviation is ErrCorruptCheckpoint.
func (l *Log) readCheckpoint(name string) ([]int64, [][]byte, error) {
	f, err := l.fs.Open(path.Join(l.dir, name))
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open checkpoint %s: %w", name, err)
	}
	defer f.Close()
	sc, err := newFrameScanner(f)
	if err != nil {
		return nil, nil, err
	}
	var keys []int64
	var vals [][]byte
	chunks := uint64(0)
	sawStart, sawEnd := false, false
	for {
		payload, ok, err := sc.next()
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %s: %v", ErrCorruptCheckpoint, name, err)
		}
		if !ok {
			break
		}
		if sawEnd {
			return nil, nil, fmt.Errorf("%w: %s: frames after end marker", ErrCorruptCheckpoint, name)
		}
		kind := payload[0]
		switch {
		case !sawStart:
			if kind != kindCheckpointStart {
				return nil, nil, fmt.Errorf("%w: %s: missing start frame", ErrCorruptCheckpoint, name)
			}
			sawStart = true
		case kind == kindChunkImage:
			prevLen := len(keys)
			keys, vals, err = vectormap.DecodeImage(payload[1:], keys, vals)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: %s: %v", ErrCorruptCheckpoint, name, err)
			}
			if prevLen > 0 && len(keys) > prevLen && keys[prevLen] <= keys[prevLen-1] {
				return nil, nil, fmt.Errorf("%w: %s: chunk images out of order", ErrCorruptCheckpoint, name)
			}
			chunks++
		case kind == kindCheckpointEnd:
			r := payload[1:]
			wantChunks, n1 := binary.Uvarint(r)
			if n1 <= 0 {
				return nil, nil, fmt.Errorf("%w: %s: bad end frame", ErrCorruptCheckpoint, name)
			}
			wantKeys, n2 := binary.Uvarint(r[n1:])
			if n2 <= 0 || len(r) != n1+n2 {
				return nil, nil, fmt.Errorf("%w: %s: bad end frame", ErrCorruptCheckpoint, name)
			}
			if wantChunks != chunks || wantKeys != uint64(len(keys)) {
				return nil, nil, fmt.Errorf("%w: %s: totals mismatch (have %d chunks/%d keys, want %d/%d)",
					ErrCorruptCheckpoint, name, chunks, len(keys), wantChunks, wantKeys)
			}
			sawEnd = true
		default:
			return nil, nil, fmt.Errorf("%w: %s: unexpected frame kind %d", ErrCorruptCheckpoint, name, kind)
		}
	}
	if !sawStart || !sawEnd {
		return nil, nil, fmt.Errorf("%w: %s: incomplete", ErrCorruptCheckpoint, name)
	}
	return keys, vals, nil
}

// gcUnreferenced deletes every wal-shaped file the manifest does not
// reference: segments dropped by truncation, checkpoints whose compaction
// crashed before the swap, and stale manifest temporaries. Safe by
// construction — the manifest is the only root, and it was durably written
// before this runs.
func (l *Log) gcUnreferenced() {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return
	}
	live := map[string]bool{manifestName: true}
	if l.mf.checkpoint != "" {
		live[l.mf.checkpoint] = true
	}
	for _, s := range l.mf.segments {
		live[s] = true
	}
	for _, n := range names {
		if live[n] {
			continue
		}
		if _, ok := fileID(n); ok || n == manifestName+".tmp" {
			_ = l.fs.Remove(path.Join(l.dir, n))
		}
	}
}

func (l *Log) fileSize(name string) int64 {
	f, err := l.fs.Open(path.Join(l.dir, name))
	if err != nil {
		return -1
	}
	defer f.Close()
	sz, err := f.Size()
	if err != nil {
		return -1
	}
	return sz
}
