package wal

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func mustOpen(t *testing.T, fs FS, opts Options) (*Log, *Recovery) {
	t.Helper()
	opts.FS = fs
	l, rec, err := Open("/db", opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func put(k int64, v string) Op { return Op{Key: k, Val: []byte(v)} }
func del(k int64) Op           { return Op{Key: k, Del: true} }
func ops(o ...Op) []Op         { return o }
func sameOps(a, b []Op) bool   { return reflect.DeepEqual(normOps(a), normOps(b)) }
func normOps(o []Op) []Op {
	out := make([]Op, len(o))
	for i, op := range o {
		out[i] = op
		if len(op.Val) == 0 {
			out[i].Val = nil
		}
	}
	return out
}

func TestFrameRoundTrip(t *testing.T) {
	in := ops(put(1, "one"), del(-42), put(1<<60, ""), del(7))
	payload := encodeOps(nil, in)
	r, err := decodeRecord(payload)
	if err != nil {
		t.Fatalf("decodeRecord: %v", err)
	}
	if r.Kind != kindOps || r.Unit != 0 || !sameOps(r.Ops, in) {
		t.Fatalf("round trip mismatch: %+v", r)
	}

	part := encodeBatchPart(nil, 99, in)
	r, err = decodeRecord(part)
	if err != nil {
		t.Fatalf("decode part: %v", err)
	}
	if r.Kind != kindBatchPart || r.Unit != 99 || !sameOps(r.Ops, in) {
		t.Fatalf("part mismatch: %+v", r)
	}

	commit := encodeBatchCommit(nil, 99)
	r, err = decodeRecord(commit)
	if err != nil || r.Kind != kindBatchCommit || r.Unit != 99 {
		t.Fatalf("commit mismatch: %+v err=%v", r, err)
	}

	// Checkpoint kinds are not op-segment records.
	if _, err := decodeRecord(encodeCheckpointStart(nil)); !errors.Is(err, errBadFrame) {
		t.Fatalf("checkpoint frame in op segment should be rejected, got %v", err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	mf := &manifest{checkpoint: "ckpt-000000000003.wal",
		segments: []string{"seg-000000000004.wal", "seg-000000000005.wal"}}
	got, err := parseManifest(mf.encode())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !reflect.DeepEqual(got, mf) {
		t.Fatalf("round trip: got %+v want %+v", got, mf)
	}

	// Any bit flip must be caught by the crc trailer.
	enc := mf.encode()
	for off := 0; off < len(enc); off++ {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0x10
		if _, err := parseManifest(bad); err == nil {
			t.Fatalf("bit flip at %d accepted", off)
		}
	}
}

func TestFileID(t *testing.T) {
	for name, want := range map[string]uint64{
		segmentName(7): 7, ckptName(123): 123,
	} {
		if id, ok := fileID(name); !ok || id != want {
			t.Fatalf("fileID(%s) = %d,%v", name, id, ok)
		}
	}
	for _, name := range []string{"MANIFEST", "seg-x.wal", "foo.wal", "seg-1.txt"} {
		if _, ok := fileID(name); ok {
			t.Fatalf("fileID(%s) accepted", name)
		}
	}
}

func TestAppendRecoverBasic(t *testing.T) {
	fs := NewMemFS(1)
	l, rec := mustOpen(t, fs, Options{})
	if len(rec.Tail) != 0 || rec.Truncated {
		t.Fatalf("fresh recovery not empty: %+v", rec)
	}
	want := [][]Op{
		ops(put(1, "a"), put(2, "b")),
		ops(del(1)),
		ops(put(3, "c")),
	}
	for _, o := range want {
		if err := l.AppendOps(o); err != nil {
			t.Fatalf("AppendOps: %v", err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rec2 := mustOpen(t, fs, Options{})
	defer l2.Close()
	if rec2.Truncated || rec2.ScannedRecords != 3 || rec2.ReplayedRecords != 3 {
		t.Fatalf("recovery: %+v", rec2)
	}
	if len(rec2.Tail) != len(want) {
		t.Fatalf("tail: %d records, want %d", len(rec2.Tail), len(want))
	}
	for i, r := range rec2.Tail {
		if !sameOps(r.Ops, want[i]) {
			t.Fatalf("record %d: %+v want %+v", i, r.Ops, want[i])
		}
	}
}

func TestBatchUnitAtomicity(t *testing.T) {
	fs := NewMemFS(2)
	l, _ := mustOpen(t, fs, Options{})

	// Committed unit: parts + marker.
	u1 := l.BeginUnit()
	l.AppendBatchPart(u1, ops(put(1, "a")))
	l.AppendBatchPart(u1, ops(put(2, "b")))
	l.EndUnit(u1)

	// Orphaned unit: parts, no marker (the writer died mid-batch).
	u2 := l.BeginUnit()
	l.AppendBatchPart(u2, ops(put(3, "x")))
	l.unitMu.RUnlock() // abandon without EndUnit

	l.Sync()
	l.Close()

	l2, rec := mustOpen(t, fs, Options{})
	if rec.ScannedRecords != 4 || rec.ReplayedRecords != 3 || rec.DroppedRecords != 1 {
		t.Fatalf("counts: %+v", rec)
	}
	if len(rec.Tail) != 2 {
		t.Fatalf("tail: %d records, want 2 committed parts", len(rec.Tail))
	}
	for _, r := range rec.Tail {
		if r.Unit != u1 {
			t.Fatalf("uncommitted unit leaked into tail: %+v", r)
		}
	}
	// A new unit in the next life must not collide with the orphaned id.
	if u := l2.BeginUnit(); u <= u2 {
		t.Fatalf("unit id %d reused (orphan was %d)", u, u2)
	}
	l2.unitMu.RUnlock()
	l2.Close()
}

func TestTornTailTruncation(t *testing.T) {
	fs := NewMemFS(3)
	l, _ := mustOpen(t, fs, Options{})
	l.AppendOps(ops(put(1, "a")))
	l.AppendOps(ops(put(2, "b")))
	l.Sync()
	goodSize := fs.FileSize("/db/" + l.mf.segments[0])
	l.AppendOps(ops(put(3, "c")))
	l.Close()
	seg := "/db/" + segmentName(1)

	// Tear the last record to a strict prefix, as a crash would.
	fs.Truncate(seg, goodSize+5)

	l2, rec := mustOpen(t, fs, Options{})
	if !rec.Truncated || rec.TruncatedOffset != goodSize || rec.TruncatedBytes != 5 {
		t.Fatalf("truncation: %+v (goodSize %d)", rec, goodSize)
	}
	if rec.ScannedRecords != 2 || len(rec.Tail) != 2 {
		t.Fatalf("scan after tear: %+v", rec)
	}
	if sz := fs.FileSize(seg); sz != goodSize {
		t.Fatalf("torn tail not cut: size %d want %d", sz, goodSize)
	}
	// Appends continue cleanly after the cut.
	l2.AppendOps(ops(put(4, "d")))
	l2.Sync()
	l2.Close()

	l3, rec3 := mustOpen(t, fs, Options{})
	defer l3.Close()
	if rec3.Truncated || len(rec3.Tail) != 3 {
		t.Fatalf("second recovery: %+v", rec3)
	}
}

func TestBitFlipTruncates(t *testing.T) {
	// A flipped bit anywhere in a record's frame truncates at that record,
	// keeping everything before it. Probe every byte of the second record.
	sizer := NewMemFS(4)
	{
		l, _ := mustOpen(t, sizer, Options{})
		l.AppendOps(ops(put(1, "aaaa")))
		l.Close()
	}
	firstSize := sizer.FileSize("/db/" + segmentName(1))
	for off := int64(0); ; off++ {
		fs := NewMemFS(4)
		l, _ := mustOpen(t, fs, Options{})
		l.AppendOps(ops(put(1, "aaaa")))
		l.AppendOps(ops(put(2, "bbbb")))
		l.Sync()
		l.Close()
		seg := "/db/" + segmentName(1)
		if firstSize+off >= fs.FileSize(seg) {
			break // past the end of the second record
		}
		if err := fs.Corrupt(seg, firstSize+off, uint8(off)); err != nil {
			t.Fatalf("corrupt at +%d: %v", off, err)
		}
		_, rec := mustOpen(t, fs, Options{})
		if !rec.Truncated || rec.TruncatedOffset != firstSize {
			t.Fatalf("flip at +%d: %+v (want cut at %d)", off, rec, firstSize)
		}
		if rec.ScannedRecords != 1 || len(rec.Tail) != 1 || rec.Tail[0].Ops[0].Key != 1 {
			t.Fatalf("flip at +%d: surviving tail wrong: %+v", off, rec)
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	fs := NewMemFS(5)
	l, _ := mustOpen(t, fs, Options{SegmentBytes: 64})
	const n = 20
	for i := 0; i < n; i++ {
		l.AppendOps(ops(put(int64(i), "0123456789abcdef")))
	}
	l.Sync()
	if len(l.mf.segments) < 3 {
		t.Fatalf("expected rotation, manifest has %d segments", len(l.mf.segments))
	}
	l.Close()

	_, rec := mustOpen(t, fs, Options{SegmentBytes: 64})
	if rec.Truncated || len(rec.Tail) != n {
		t.Fatalf("recovery across segments: %d records, truncated=%v", len(rec.Tail), rec.Truncated)
	}
	for i, r := range rec.Tail {
		if r.Ops[0].Key != int64(i) {
			t.Fatalf("record %d out of order: key %d", i, r.Ops[0].Key)
		}
	}
}

func writeCheckpoint(t *testing.T, l *Log, chunks ...[]int64) {
	t.Helper()
	cw, err := l.BeginCheckpoint(func() {})
	if err != nil {
		t.Fatalf("BeginCheckpoint: %v", err)
	}
	for _, keys := range chunks {
		vals := make([][]byte, len(keys))
		for i, k := range keys {
			vals[i] = []byte(fmt.Sprintf("v%d", k))
		}
		if err := cw.WriteChunk(keys, vals); err != nil {
			t.Fatalf("WriteChunk: %v", err)
		}
	}
	if err := cw.Commit(); err != nil {
		t.Fatalf("checkpoint Commit: %v", err)
	}
}

func TestCheckpointSwapAndPrune(t *testing.T) {
	fs := NewMemFS(6)
	l, _ := mustOpen(t, fs, Options{SegmentBytes: 64})
	for i := 0; i < 10; i++ {
		l.AppendOps(ops(put(int64(i), "0123456789abcdef")))
	}
	before := len(fs.FileNames())
	writeCheckpoint(t, l, []int64{1, 2, 3}, []int64{10, 20})
	// Records appended after the checkpoint boundary belong to the tail.
	l.AppendOps(ops(put(100, "post")))
	l.Sync()

	// Everything before the boundary must be pruned: the files on disk are
	// exactly the manifest's references (+MANIFEST itself).
	names := fs.FileNames()
	if len(names) >= before {
		t.Fatalf("no pruning: %d files before, %v after", before, names)
	}
	live := map[string]bool{"/db/MANIFEST": true, "/db/" + l.mf.checkpoint: true}
	for _, s := range l.mf.segments {
		live["/db/"+s] = true
	}
	for _, n := range names {
		if !live[n] {
			t.Fatalf("unreferenced file survived pruning: %s (live: %v)", n, l.mf.segments)
		}
	}
	l.Close()

	_, rec := mustOpen(t, fs, Options{})
	if got := len(rec.CheckpointKeys); got != 5 {
		t.Fatalf("checkpoint keys: %d want 5", got)
	}
	for i, k := range []int64{1, 2, 3, 10, 20} {
		if rec.CheckpointKeys[i] != k || string(rec.CheckpointVals[i]) != fmt.Sprintf("v%d", k) {
			t.Fatalf("checkpoint entry %d: %d=%q", i, rec.CheckpointKeys[i], rec.CheckpointVals[i])
		}
	}
	if len(rec.Tail) != 1 || rec.Tail[0].Ops[0].Key != 100 {
		t.Fatalf("post-checkpoint tail: %+v", rec.Tail)
	}
}

func TestCheckpointAbort(t *testing.T) {
	fs := NewMemFS(7)
	l, _ := mustOpen(t, fs, Options{})
	l.AppendOps(ops(put(1, "a")))
	cw, err := l.BeginCheckpoint(func() {})
	if err != nil {
		t.Fatal(err)
	}
	cw.WriteChunk([]int64{1}, [][]byte{[]byte("a")})
	cw.Abort()
	l.Sync()
	l.Close()

	_, rec := mustOpen(t, fs, Options{})
	if len(rec.CheckpointKeys) != 0 {
		t.Fatalf("aborted checkpoint visible: %+v", rec.CheckpointKeys)
	}
	if len(rec.Tail) != 1 {
		t.Fatalf("tail lost: %+v", rec)
	}
}

func TestCheckpointCorruptionIsFatal(t *testing.T) {
	fs := NewMemFS(8)
	l, _ := mustOpen(t, fs, Options{})
	l.AppendOps(ops(put(1, "a")))
	writeCheckpoint(t, l, []int64{1, 2, 3})
	ckpt := "/db/" + l.mf.checkpoint
	l.Close()

	if err := fs.Corrupt(ckpt, fs.FileSize(ckpt)/2, 3); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open("/db", Options{FS: fs})
	if !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("corrupt checkpoint: got %v", err)
	}
}

func TestGCUnreferencedFiles(t *testing.T) {
	fs := NewMemFS(9)
	l, _ := mustOpen(t, fs, Options{})
	l.AppendOps(ops(put(1, "a")))
	l.Sync()
	l.Close()

	// Plant strays: an orphaned segment, checkpoint, and manifest temp.
	for _, name := range []string{"/db/" + segmentName(999), "/db/" + ckptName(998), "/db/MANIFEST.tmp"} {
		f, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("junk"))
		f.Close()
	}
	l2, rec := mustOpen(t, fs, Options{})
	defer l2.Close()
	if rec.Truncated {
		t.Fatalf("strays caused truncation: %+v", rec)
	}
	for _, n := range fs.FileNames() {
		if n == "/db/"+segmentName(999) || n == "/db/"+ckptName(998) || n == "/db/MANIFEST.tmp" {
			t.Fatalf("stray survived gc: %s", n)
		}
	}
	// The id allocator skipped past the stray's id.
	if l2.nextID <= 999 {
		t.Fatalf("nextID %d did not skip past stray id 999", l2.nextID)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncEveryCommit, SyncInterval, SyncOS} {
		t.Run(policy.String(), func(t *testing.T) {
			fs := NewMemFS(10)
			l, _ := mustOpen(t, fs, Options{Policy: policy})
			l.AppendOps(ops(put(1, "a")))
			if err := l.Commit(); err != nil {
				t.Fatalf("Commit: %v", err)
			}
			if policy == SyncEveryCommit && l.durableLSN.Load() != l.tailLSN.Load() {
				t.Fatalf("commit did not sync: durable %d tail %d", l.durableLSN.Load(), l.tailLSN.Load())
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			// Close syncs under every policy; a clean shutdown loses nothing.
			_, rec := mustOpen(t, fs, Options{Policy: policy})
			if len(rec.Tail) != 1 {
				t.Fatalf("clean shutdown lost records: %+v", rec)
			}
		})
	}
}

func TestClosedLogRejectsAppends(t *testing.T) {
	fs := NewMemFS(11)
	l, _ := mustOpen(t, fs, Options{})
	l.Close()
	if err := l.AppendOps(ops(put(1, "a"))); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
}

func TestPoisonSticks(t *testing.T) {
	fs := NewMemFS(12)
	l, _ := mustOpen(t, fs, Options{})
	l.AppendOps(ops(put(1, "a")))
	fs.SetCrashAfter(0) // every subsequent FS mutation fails
	err1 := l.AppendOps(ops(put(2, "b")))
	// The first failing append may have been absorbed by buffering; at the
	// latest the sync surfaces it.
	err2 := l.Sync()
	if err1 == nil && err2 == nil {
		t.Fatal("no error surfaced after FS failure")
	}
	if err := l.Err(); err == nil {
		t.Fatal("log not poisoned")
	}
	if err := l.AppendOps(ops(put(3, "c"))); err == nil {
		t.Fatal("poisoned log accepted an append")
	}
}

func TestMemFSCrashSettlement(t *testing.T) {
	// Synced bytes always survive a crash; unsynced bytes never grow.
	fs := NewMemFS(13)
	f, _ := fs.Create("/f")
	f.Write(bytes.Repeat([]byte("s"), 100))
	f.Sync()
	f.Write(bytes.Repeat([]byte("u"), 100))
	fs.SetCrashAfter(0)
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write past crash: %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("not crashed")
	}
	fs.Crash()
	sz := fs.FileSize("/f")
	if sz < 100 || sz > 201 {
		t.Fatalf("settled size %d outside [synced, written]", sz)
	}
	// The synced prefix is intact.
	h, _ := fs.Open("/f")
	buf := make([]byte, 100)
	h.ReadAt(buf, 0)
	if !bytes.Equal(buf, bytes.Repeat([]byte("s"), 100)) {
		t.Fatal("synced prefix damaged by crash settlement")
	}
}
