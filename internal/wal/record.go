package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"skipvector/internal/vectormap"
)

// Frame layout. Every record is length-prefixed and CRC32C-framed:
//
//	[len uint32 LE][crc32c uint32 LE][payload: kind byte + body]
//
// len counts payload bytes; the CRC (Castagnoli polynomial) covers the
// payload only. A frame whose length field is implausible, whose payload is
// cut short, or whose CRC mismatches is treated as the torn tail of the log:
// recovery stops there and truncates. Bodies use varint encoding (zigzag for
// keys) — chunk runs of nearby keys delta-compress naturally.

const (
	frameHeader = 8       // len + crc
	maxFrame    = 1 << 28 // sanity bound; larger lengths are treated as corruption
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record kinds.
const (
	// kindOps is a self-committed set of operations: a singleton write or a
	// serializable range update, atomic as one frame.
	kindOps = byte(1)
	// kindBatchPart carries one group commit's operations of a batch unit;
	// replayed only when the unit's kindBatchCommit marker is in the log.
	kindBatchPart = byte(2)
	// kindBatchCommit marks a batch unit durable-complete.
	kindBatchCommit = byte(3)
	// kindCheckpointStart opens a checkpoint file.
	kindCheckpointStart = byte(4)
	// kindChunkImage is one sorted chunk image of a checkpoint.
	kindChunkImage = byte(5)
	// kindCheckpointEnd closes a checkpoint file, carrying totals for
	// validation; a checkpoint without it never entered the manifest.
	kindCheckpointEnd = byte(6)
)

// Op is one logged operation, already resolved to its effect: Del removes
// Key, otherwise Key is set to Val. Insert-or-overwrite distinctions are
// settled before logging — only effective mutations reach the log — so
// replay is a plain upsert/delete stream and re-applying a suffix of it on
// top of a newer checkpoint is idempotent.
type Op struct {
	Key int64
	Val []byte
	Del bool
}

// Record is one decoded log record.
type Record struct {
	Kind byte
	Unit uint64 // batch unit for kindBatchPart/kindBatchCommit; 0 otherwise
	Ops  []Op   // kindOps and kindBatchPart payloads
}

// appendFrame wraps payload in a frame and appends it to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// appendOpsBody appends the shared ops body: count, then per op a flag byte,
// a zigzag key, and (for puts) the value bytes.
func appendOpsBody(dst []byte, ops []Op) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ops)))
	for i := range ops {
		op := &ops[i]
		flags := byte(0)
		if op.Del {
			flags = 1
		}
		dst = append(dst, flags)
		dst = binary.AppendVarint(dst, op.Key)
		if !op.Del {
			dst = binary.AppendUvarint(dst, uint64(len(op.Val)))
			dst = append(dst, op.Val...)
		}
	}
	return dst
}

// encodeOps builds a kindOps payload.
func encodeOps(dst []byte, ops []Op) []byte {
	dst = append(dst, kindOps)
	return appendOpsBody(dst, ops)
}

// encodeBatchPart builds a kindBatchPart payload.
func encodeBatchPart(dst []byte, unit uint64, ops []Op) []byte {
	dst = append(dst, kindBatchPart)
	dst = binary.AppendUvarint(dst, unit)
	return appendOpsBody(dst, ops)
}

// encodeBatchCommit builds a kindBatchCommit payload.
func encodeBatchCommit(dst []byte, unit uint64) []byte {
	dst = append(dst, kindBatchCommit)
	return binary.AppendUvarint(dst, unit)
}

// encodeCheckpointStart builds a kindCheckpointStart payload.
func encodeCheckpointStart(dst []byte) []byte {
	return append(dst, kindCheckpointStart)
}

// encodeChunkImage builds a kindChunkImage payload from one sorted chunk's
// keys and encoded values, delegating the image layout to vectormap (the
// chunk is the serialization unit).
func encodeChunkImage(dst []byte, keys []int64, vals [][]byte) []byte {
	dst = append(dst, kindChunkImage)
	return vectormap.AppendImage(dst, keys, vals)
}

// encodeCheckpointEnd builds a kindCheckpointEnd payload carrying the chunk
// and key totals for end-to-end validation.
func encodeCheckpointEnd(dst []byte, chunks, keys uint64) []byte {
	dst = append(dst, kindCheckpointEnd)
	dst = binary.AppendUvarint(dst, chunks)
	return binary.AppendUvarint(dst, keys)
}

// errBadFrame marks payloads recovery must treat as the torn tail.
var errBadFrame = errors.New("wal: bad frame")

// decodeOpsBody parses the shared ops body.
func decodeOpsBody(b []byte) ([]Op, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 || count > maxFrame {
		return nil, errBadFrame
	}
	b = b[n:]
	ops := make([]Op, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(b) < 2 {
			return nil, errBadFrame
		}
		flags := b[0]
		if flags > 1 {
			return nil, errBadFrame
		}
		b = b[1:]
		k, n := binary.Varint(b)
		if n <= 0 {
			return nil, errBadFrame
		}
		b = b[n:]
		op := Op{Key: k, Del: flags == 1}
		if !op.Del {
			vlen, n := binary.Uvarint(b)
			if n <= 0 || uint64(len(b)-n) < vlen {
				return nil, errBadFrame
			}
			b = b[n:]
			op.Val = append([]byte(nil), b[:vlen]...)
			b = b[vlen:]
		}
		ops = append(ops, op)
	}
	if len(b) != 0 {
		return nil, errBadFrame
	}
	return ops, nil
}

// decodeRecord parses one payload into a Record.
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, errBadFrame
	}
	kind, body := payload[0], payload[1:]
	switch kind {
	case kindOps:
		ops, err := decodeOpsBody(body)
		if err != nil {
			return Record{}, err
		}
		return Record{Kind: kind, Ops: ops}, nil
	case kindBatchPart:
		unit, n := binary.Uvarint(body)
		if n <= 0 {
			return Record{}, errBadFrame
		}
		ops, err := decodeOpsBody(body[n:])
		if err != nil {
			return Record{}, err
		}
		return Record{Kind: kind, Unit: unit, Ops: ops}, nil
	case kindBatchCommit:
		unit, n := binary.Uvarint(body)
		if n <= 0 || len(body) != n {
			return Record{}, errBadFrame
		}
		return Record{Kind: kind, Unit: unit}, nil
	case kindCheckpointStart, kindChunkImage, kindCheckpointEnd:
		// Checkpoint frames live in checkpoint files and are decoded by the
		// checkpoint reader; one appearing in an op segment is corruption.
		return Record{}, errBadFrame
	default:
		return Record{}, errBadFrame
	}
}

// frameScanner walks the frames of one file.
type frameScanner struct {
	f    File
	size int64
	off  int64
	buf  []byte
}

func newFrameScanner(f File) (*frameScanner, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	return &frameScanner{f: f, size: size}, nil
}

// next returns the payload of the next frame. ok=false with err==nil means
// a clean end of file; err==errBadFrame means the scan hit a torn or corrupt
// frame at offset s.off (which the caller truncates at); other errors are
// I/O failures. The returned payload is only valid until the next call.
func (s *frameScanner) next() (payload []byte, ok bool, err error) {
	if s.off == s.size {
		return nil, false, nil
	}
	if s.size-s.off < frameHeader {
		return nil, false, errBadFrame
	}
	var hdr [frameHeader]byte
	if _, err := s.f.ReadAt(hdr[:], s.off); err != nil {
		return nil, false, fmt.Errorf("wal: read frame header: %w", err)
	}
	plen := int64(binary.LittleEndian.Uint32(hdr[0:4]))
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if plen == 0 || plen > maxFrame || s.size-s.off-frameHeader < plen {
		return nil, false, errBadFrame
	}
	if int64(cap(s.buf)) < plen {
		s.buf = make([]byte, plen)
	}
	buf := s.buf[:plen]
	if _, err := s.f.ReadAt(buf, s.off+frameHeader); err != nil {
		return nil, false, fmt.Errorf("wal: read frame payload: %w", err)
	}
	if crc32.Checksum(buf, castagnoli) != crc {
		return nil, false, errBadFrame
	}
	s.off += frameHeader + plen
	return buf, true, nil
}
