package wal

import (
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"

	"skipvector/internal/chaos"
)

// ErrCrashed is returned by every MemFS operation after the scheduled crash
// point has been reached, modeling a killed process whose file descriptors
// are gone. The durable image survives for the post-crash reopen.
var ErrCrashed = errors.New("wal: filesystem crashed (injected)")

// MemFS is an in-memory filesystem with power-failure semantics, built for
// the crash-injection campaign. It distinguishes the volatile page cache
// (every write lands there) from stable storage (only Sync promotes bytes),
// and it can schedule a deterministic crash at the Nth mutating operation:
//
//   - Once the crash fires, every operation returns ErrCrashed — the process
//     is dead as far as the log is concerned.
//   - Crash() then settles the disk image: unsynced bytes are kept, dropped,
//     or torn to a byte prefix per a seeded draw (consulting the
//     chaos.WALTornWrite site when chaos is enabled), renames that had not
//     reached the directory are rolled back, and the filesystem reopens for
//     the recovery run.
//
// Sweeping N across a workload visits every write/sync/rename boundary the
// log crosses — including mid-fsync and mid-manifest-swap — which is how the
// campaign gets its crash points without subprocesses.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	dirs    map[string]bool
	crashIn int64 // ops until crash; <0 disarmed
	crashed bool
	seed    uint64
	opCount int64
}

type memFile struct {
	current []byte // volatile contents (page cache)
	synced  int64  // prefix length known to be on stable storage
	// renamedFrom tracks an unsynced-rename rollback target: when the file
	// appeared via Rename after the last crash settlement, a crash may
	// resurrect the old name. The os implementation fsyncs the directory on
	// rename, so renames are modeled durable; kept for documentation only.
}

// NewMemFS builds an empty in-memory filesystem. seed drives every
// crash-settlement draw, making each campaign point reproducible.
func NewMemFS(seed uint64) *MemFS {
	return &MemFS{
		files:   make(map[string]*memFile),
		dirs:    make(map[string]bool),
		seed:    seed,
		crashIn: -1, // disarmed until SetCrashAfter
	}
}

// SetCrashAfter arms the crash: the (n+1)th subsequent mutating operation
// (Write, Sync, Create, Rename, Remove, Truncate) fails with ErrCrashed, as
// does everything after it. n < 0 disarms.
func (fs *MemFS) SetCrashAfter(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashIn = n
	if n < 0 {
		fs.crashIn = -1
	}
}

// Ops returns the number of mutating operations performed so far; sweeping
// SetCrashAfter over [0, Ops) visits every crash boundary of a workload.
func (fs *MemFS) Ops() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.opCount
}

// Crashed reports whether the scheduled crash has fired.
func (fs *MemFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// Crash settles the post-crash disk image and reopens the filesystem for
// recovery. For every file, synced bytes survive; the unsynced suffix is
// kept whole, dropped, or torn to a strict prefix — the OS may have written
// back any amount of the page cache before the power went out. The draw is
// seeded, and the torn case additionally fires when the chaos layer forces
// a chaos.WALTornWrite failure.
func (fs *MemFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	rng := fs.seed ^ 0x9e3779b97f4a7c15
	next := func() uint64 {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic settlement order
	for _, name := range names {
		f := fs.files[name]
		unsynced := int64(len(f.current)) - f.synced
		if unsynced <= 0 {
			f.current = f.current[:f.synced]
			continue
		}
		keep := unsynced
		torn := chaos.Fail(chaos.WALTornWrite)
		switch d := next() % 4; {
		case torn || d == 0:
			// Torn: a strict prefix of the unsynced suffix survives.
			keep = int64(next() % uint64(unsynced))
		case d == 1:
			keep = 0 // nothing written back
		default:
			// Kept whole: background writeback got there in time.
		}
		f.current = f.current[:f.synced+keep]
		f.synced = int64(len(f.current))
	}
	fs.crashed = false
	fs.crashIn = -1
}

// step charges one mutating operation against the crash schedule. It returns
// ErrCrashed once the boundary is reached.
func (fs *MemFS) step() error {
	if fs.crashed {
		return ErrCrashed
	}
	fs.opCount++
	if fs.crashIn >= 0 {
		if fs.crashIn == 0 {
			fs.crashed = true
			return ErrCrashed
		}
		fs.crashIn--
	}
	return nil
}

func (fs *MemFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	fs.dirs[path.Clean(dir)] = true
	return nil
}

func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(); err != nil {
		return nil, err
	}
	f := &memFile{}
	fs.files[path.Clean(name)] = f
	return &memHandle{fs: fs, f: f}, nil
}

func (fs *MemFS) OpenAppend(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	f, ok := fs.files[path.Clean(name)]
	if !ok {
		return nil, fmt.Errorf("wal: memfs: open %s: no such file", name)
	}
	return &memHandle{fs: fs, f: f}, nil
}

func (fs *MemFS) Open(name string) (File, error) {
	return fs.OpenAppend(name) // reads share the handle type; writers are trusted
}

func (fs *MemFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	prefix := path.Clean(dir) + "/"
	var names []string
	for name := range fs.files {
		if strings.HasPrefix(name, prefix) {
			rest := name[len(prefix):]
			if !strings.Contains(rest, "/") {
				names = append(names, rest)
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

func (fs *MemFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(); err != nil {
		return err
	}
	f, ok := fs.files[path.Clean(oldname)]
	if !ok {
		return fmt.Errorf("wal: memfs: rename %s: no such file", oldname)
	}
	// Modeled durable, matching osFS's rename + directory fsync. The crash
	// boundary can still land immediately before this op (rename never
	// happened) or after it (rename fully visible) — both campaign cases.
	delete(fs.files, path.Clean(oldname))
	fs.files[path.Clean(newname)] = f
	return nil
}

func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(); err != nil {
		return err
	}
	if _, ok := fs.files[path.Clean(name)]; !ok {
		return fmt.Errorf("wal: memfs: remove %s: no such file", name)
	}
	delete(fs.files, path.Clean(name))
	return nil
}

func (fs *MemFS) Truncate(name string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.step(); err != nil {
		return err
	}
	f, ok := fs.files[path.Clean(name)]
	if !ok {
		return fmt.Errorf("wal: memfs: truncate %s: no such file", name)
	}
	if size < int64(len(f.current)) {
		f.current = f.current[:size]
		if f.synced > size {
			f.synced = size
		}
	}
	return nil
}

// Corrupt flips one bit at offset off of name's durable image; used by the
// replay fuzzer and the recovery tests. It bypasses the crash schedule.
func (fs *MemFS) Corrupt(name string, off int64, bit uint8) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path.Clean(name)]
	if !ok {
		return fmt.Errorf("wal: memfs: corrupt %s: no such file", name)
	}
	if off < 0 || off >= int64(len(f.current)) {
		return fmt.Errorf("wal: memfs: corrupt %s: offset %d out of range", name, off)
	}
	f.current[off] ^= 1 << (bit % 8)
	return nil
}

// FileNames lists every file currently present, sorted; for test assertions
// about pruning.
func (fs *MemFS) FileNames() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// FileSize returns the current length of name, or -1 when absent.
func (fs *MemFS) FileSize(name string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path.Clean(name)]
	if !ok {
		return -1
	}
	return int64(len(f.current))
}

// memHandle is a MemFS file handle; appends only (matching the log's use).
type memHandle struct {
	fs *MemFS
	f  *memFile
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.step(); err != nil {
		// The dying write may still tear a prefix into the page cache; the
		// crash settlement decides how much of it reaches the disk image.
		if len(p) > 0 {
			h.f.current = append(h.f.current, p[:len(p)/2]...)
		}
		return 0, err
	}
	h.f.current = append(h.f.current, p...)
	return len(p), nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	if off >= int64(len(h.f.current)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.current[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	return int64(len(h.f.current)), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.step(); err != nil {
		// A crash mid-fsync leaves it unknown how much reached the platter;
		// the settlement draw in Crash covers the spectrum.
		return err
	}
	h.f.synced = int64(len(h.f.current))
	return nil
}

func (h *memHandle) Close() error { return nil }
