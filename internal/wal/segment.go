package wal

import (
	"bufio"
	"bytes"
	"fmt"
	"hash/crc32"
	"path"
	"strconv"
	"strings"
)

// The manifest is the log's root pointer: a tiny text file listing the live
// checkpoint (at most one) and the op segments in replay order. It is only
// ever replaced whole — written to a temporary name, fsynced, then renamed
// over MANIFEST — so a crash leaves either the old catalog or the new one,
// never a mix. Files in the directory that the manifest does not reference
// are garbage from an interrupted rotation or compaction and are deleted on
// the next open.
//
//	svwal v1
//	checkpoint ckpt-000000000003.wal
//	segment seg-000000000004.wal
//	segment seg-000000000005.wal
//	crc 1a2b3c4d
//
// The trailing crc line (CRC32C of everything above it) guards against a
// torn manifest on filesystems whose rename is weaker than advertised; a
// manifest that fails it is a hard recovery error rather than silent data
// loss.

const manifestName = "MANIFEST"

type manifest struct {
	checkpoint string   // "" when none
	segments   []string // replay order; the last one is the append tail
}

func segmentName(id uint64) string { return fmt.Sprintf("seg-%012d.wal", id) }
func ckptName(id uint64) string    { return fmt.Sprintf("ckpt-%012d.wal", id) }

// fileID extracts the numeric id from a seg-/ckpt- file name; ok=false for
// foreign names.
func fileID(name string) (uint64, bool) {
	base := strings.TrimSuffix(name, ".wal")
	if base == name {
		return 0, false
	}
	var num string
	switch {
	case strings.HasPrefix(base, "seg-"):
		num = base[len("seg-"):]
	case strings.HasPrefix(base, "ckpt-"):
		num = base[len("ckpt-"):]
	default:
		return 0, false
	}
	id, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// encode renders the manifest body including its crc trailer.
func (mf *manifest) encode() []byte {
	var b bytes.Buffer
	b.WriteString("svwal v1\n")
	if mf.checkpoint != "" {
		fmt.Fprintf(&b, "checkpoint %s\n", mf.checkpoint)
	}
	for _, s := range mf.segments {
		fmt.Fprintf(&b, "segment %s\n", s)
	}
	fmt.Fprintf(&b, "crc %08x\n", crc32.Checksum(b.Bytes(), castagnoli))
	return b.Bytes()
}

// parseManifest validates and decodes a manifest body.
func parseManifest(data []byte) (*manifest, error) {
	idx := bytes.LastIndex(data, []byte("\ncrc "))
	if idx < 0 {
		return nil, fmt.Errorf("wal: manifest: missing crc trailer")
	}
	body := data[:idx+1]
	trailer := strings.TrimSpace(string(data[idx+1:]))
	want, err := strconv.ParseUint(strings.TrimPrefix(trailer, "crc "), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("wal: manifest: bad crc trailer %q", trailer)
	}
	if crc32.Checksum(body, castagnoli) != uint32(want) {
		return nil, fmt.Errorf("wal: manifest: crc mismatch")
	}
	sc := bufio.NewScanner(bytes.NewReader(body))
	if !sc.Scan() || sc.Text() != "svwal v1" {
		return nil, fmt.Errorf("wal: manifest: bad header")
	}
	mf := &manifest{}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "checkpoint "):
			if mf.checkpoint != "" {
				return nil, fmt.Errorf("wal: manifest: duplicate checkpoint line")
			}
			mf.checkpoint = strings.TrimPrefix(line, "checkpoint ")
		case strings.HasPrefix(line, "segment "):
			mf.segments = append(mf.segments, strings.TrimPrefix(line, "segment "))
		default:
			return nil, fmt.Errorf("wal: manifest: unknown line %q", line)
		}
	}
	if len(mf.segments) == 0 {
		return nil, fmt.Errorf("wal: manifest: no segments")
	}
	return mf, nil
}

// writeManifest atomically replaces dir/MANIFEST with mf: write a temporary
// file, fsync it, rename into place. fs.Rename is required to be atomic and
// (matching osFS) to persist the directory entry.
func writeManifest(fs FS, dir string, mf *manifest) error {
	tmp := path.Join(dir, manifestName+".tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(mf.encode()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, path.Join(dir, manifestName))
}

// readManifest loads and parses dir/MANIFEST. missing=true (with err==nil)
// means the file does not exist — a fresh directory.
func readManifest(fs FS, dir string) (mf *manifest, missing bool, err error) {
	f, err := fs.Open(path.Join(dir, manifestName))
	if err != nil {
		// The FS seam has no typed not-found error; distinguish a fresh
		// directory by listing it.
		names, lerr := fs.ReadDir(dir)
		if lerr != nil {
			return nil, false, err
		}
		for _, n := range names {
			if n == manifestName {
				return nil, false, err // exists but unreadable
			}
		}
		return nil, true, nil
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, false, err
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(data, 0); err != nil {
			return nil, false, err
		}
	}
	mf, err = parseManifest(data)
	if err != nil {
		return nil, false, err
	}
	return mf, false, nil
}
