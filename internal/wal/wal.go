package wal

import (
	"errors"
	"fmt"
	"path"
	"sync"
	"sync/atomic"
	"time"

	"skipvector/internal/chaos"
	"skipvector/internal/telemetry"
)

// SyncPolicy selects when appended records become durable.
type SyncPolicy int

const (
	// SyncEveryCommit fsyncs before acknowledging each commit. Concurrent
	// committers group-commit: whoever reaches the sync mutex first pays one
	// fsync for every record appended so far, and the others observe their
	// target already durable and return without syncing.
	SyncEveryCommit SyncPolicy = iota
	// SyncInterval acknowledges immediately and fsyncs on a background
	// ticker: a crash loses at most the last interval's acknowledged writes,
	// never a torn or reordered prefix.
	SyncInterval
	// SyncOS acknowledges immediately and never fsyncs (the OS page cache
	// decides); durability is only as strong as the host's crash behavior.
	SyncOS
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncEveryCommit:
		return "commit"
	case SyncInterval:
		return "interval"
	case SyncOS:
		return "os"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// Options tunes a Log.
type Options struct {
	// FS is the filesystem; nil selects the OS.
	FS FS
	// Policy is the fsync policy (default SyncEveryCommit).
	Policy SyncPolicy
	// Interval is the background fsync cadence under SyncInterval
	// (default 2ms).
	Interval time.Duration
	// SegmentBytes rotates the op segment past this size (default 64 MiB).
	SegmentBytes int64
}

func (o *Options) fill() {
	if o.FS == nil {
		o.FS = OSFS()
	}
	if o.Interval <= 0 {
		o.Interval = 2 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
}

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("wal: log closed")

// Log is the append-only chunk log. Appends are serialized by an internal
// mutex and may be issued from any goroutine — including from under the
// map's node locks, which is exactly how the commit hooks keep log order
// consistent with linearization order. Durability waits (Commit, Sync)
// never run under those locks.
type Log struct {
	fs   FS
	dir  string
	opts Options

	// appendMu serializes appends, rotation, and manifest replacement.
	appendMu sync.Mutex
	err      error // sticky failure; poisons all further appends
	closed   bool
	tailFile File
	tailSize int64
	mf       *manifest
	nextID   uint64
	encBuf   []byte
	frameBuf []byte
	// wbuf stages framed records in memory; they reach the tail file only on
	// an fsync path (Commit/Sync/flush ticker), rotation, or when the stage
	// exceeds flushThreshold. Commit hooks fire on the map's hot path under
	// chunk locks, so the per-record cost must be a memcpy, not a write
	// syscall — durability-wise the stage is equivalent to the page cache:
	// both are volatile until the fsync that acknowledgements wait on.
	wbuf []byte
	// retired keeps rotated-out segment handles open until pruned or closed,
	// so a concurrent group commit's captured handle is always syncable.
	retired map[string]File

	// tailLSN counts records appended; durableLSN trails it, advanced by
	// fsyncs. Group commit compares the two to skip redundant syncs.
	tailLSN    atomic.Uint64
	durableLSN atomic.Uint64
	syncMu     sync.Mutex // serializes fsyncs: the group-commit queue

	// unitMu drains batch commit units across the checkpoint boundary: every
	// open unit holds the read side for its whole ApplyBatch, and
	// BeginCheckpoint takes the write side so no unit's frames can straddle
	// the boundary (a checkpoint must never absorb half a batch).
	unitMu  sync.RWMutex
	unitSeq atomic.Uint64

	// flusher (SyncInterval only).
	stopFlush chan struct{}
	flushDone chan struct{}

	reg *telemetry.Registry
	c   counters
}

// counters are the log's telemetry sources; func-backed collectors in the
// registry read them at scrape time.
type counters struct {
	bytesAppended   atomic.Uint64
	recordsAppended atomic.Uint64
	fsyncs          atomic.Uint64
	checkpoints     atomic.Uint64
	ckptChunks      atomic.Uint64
	segsCreated     atomic.Uint64
	segsPruned      atomic.Uint64

	// Recovery results, set once at Open.
	recScanned    atomic.Uint64
	recReplayed   atomic.Uint64
	recDropped    atomic.Uint64
	recTruncs     atomic.Uint64
	recTruncBytes atomic.Uint64
}

// Open opens (or creates) the log directory, runs recovery, truncates any
// torn tail, and returns the log ready for appends together with what
// recovery found. The caller replays rec into its map before appending.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	opts.fill()
	l := &Log{
		fs:      opts.FS,
		dir:     dir,
		opts:    opts,
		retired: make(map[string]File),
	}
	if err := l.fs.MkdirAll(dir); err != nil {
		return nil, nil, err
	}
	rec, err := l.recover()
	if err != nil {
		return nil, nil, err
	}
	l.initMetrics()
	if opts.Policy == SyncInterval {
		l.stopFlush = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, rec, nil
}

func (l *Log) initMetrics() {
	r := telemetry.NewRegistry()
	l.reg = r
	r.CounterFunc("sv_wal_bytes_appended_total", "Frame bytes appended to op segments.", func() int64 { return int64(l.c.bytesAppended.Load()) })
	r.CounterFunc("sv_wal_records_appended_total", "Records appended to op segments.", func() int64 { return int64(l.c.recordsAppended.Load()) })
	r.CounterFunc("sv_wal_fsyncs_total", "fsync calls issued (group commit batches waiters behind one).", func() int64 { return int64(l.c.fsyncs.Load()) })
	r.CounterFunc("sv_wal_checkpoints_total", "Checkpoints committed by online compaction.", func() int64 { return int64(l.c.checkpoints.Load()) })
	r.CounterFunc("sv_wal_checkpoint_chunks_total", "Chunk images written by checkpoints.", func() int64 { return int64(l.c.ckptChunks.Load()) })
	r.CounterFunc("sv_wal_segments_created_total", "Op segments created (initial, rotation, checkpoint boundary).", func() int64 { return int64(l.c.segsCreated.Load()) })
	r.CounterFunc("sv_wal_segments_pruned_total", "Files deleted once a committed checkpoint unreferenced them.", func() int64 { return int64(l.c.segsPruned.Load()) })
	r.CounterFunc("sv_wal_records_scanned_total", "Intact records decoded by this open's recovery.", func() int64 { return int64(l.c.recScanned.Load()) })
	r.CounterFunc("sv_wal_records_replayed_total", "Scanned records applied by recovery (ops and committed batch frames).", func() int64 { return int64(l.c.recReplayed.Load()) })
	r.CounterFunc("sv_wal_records_dropped_total", "Scanned batch-part records dropped because their unit never committed.", func() int64 { return int64(l.c.recDropped.Load()) })
	r.CounterFunc("sv_wal_recovery_truncations_total", "Recoveries that truncated a torn or corrupt tail.", func() int64 { return int64(l.c.recTruncs.Load()) })
	r.CounterFunc("sv_wal_recovery_truncated_bytes_total", "Bytes discarded by recovery truncation.", func() int64 { return int64(l.c.recTruncBytes.Load()) })
	r.GaugeFunc("sv_wal_segments_live", "Files the manifest currently references.", func() float64 {
		l.appendMu.Lock()
		defer l.appendMu.Unlock()
		n := len(l.mf.segments)
		if l.mf.checkpoint != "" {
			n++
		}
		return float64(n)
	})
	r.GaugeFunc("sv_wal_durable_lag_records", "Appended records not yet known durable.", func() float64 {
		return float64(l.tailLSN.Load() - l.durableLSN.Load())
	})
}

// Registry exposes the log's metric catalog for view composition.
func (l *Log) Registry() *telemetry.Registry { return l.reg }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Err returns the sticky append failure, if any. Once an append or sync
// fails the log is poisoned: the in-memory map may be ahead of the durable
// log, so further appends are refused rather than leaving a gap. A closed
// log reports ErrClosed: no write issued after Close can be acknowledged,
// because none of it reached the log.
func (l *Log) Err() error {
	l.appendMu.Lock()
	defer l.appendMu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return ErrClosed
	}
	return nil
}

// appendRecord frames and appends one payload built by enc into the encode
// buffer. Called from commit hooks (under map node locks): it must never
// block on durability, only on the append mutex.
func (l *Log) appendRecord(enc func(dst []byte) []byte) error {
	l.appendMu.Lock()
	defer l.appendMu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return ErrClosed
	}
	l.encBuf = enc(l.encBuf[:0])
	l.frameBuf = appendFrame(l.frameBuf[:0], l.encBuf)
	l.wbuf = append(l.wbuf, l.frameBuf...)
	l.tailSize += int64(len(l.frameBuf))
	l.c.bytesAppended.Add(uint64(len(l.frameBuf)))
	l.c.recordsAppended.Add(1)
	l.tailLSN.Add(1)
	if len(l.wbuf) >= flushThreshold {
		if err := l.flushLocked(); err != nil {
			return err
		}
	}
	if l.tailSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.err = err
			return err
		}
	}
	return nil
}

// flushThreshold caps the staged-record buffer; one write syscall drains it.
const flushThreshold = 256 << 10

// flushLocked writes the staged records to the tail file. Caller holds
// appendMu. A failed flush poisons the log: the stage is dropped and every
// record in it was unacknowledged by definition (acks wait on fsync, which
// flushes first).
func (l *Log) flushLocked() error {
	if len(l.wbuf) == 0 {
		return nil
	}
	if _, err := l.tailFile.Write(l.wbuf); err != nil {
		l.err = fmt.Errorf("wal: append: %w", err)
		l.wbuf = l.wbuf[:0]
		return l.err
	}
	l.wbuf = l.wbuf[:0]
	return nil
}

// AppendOps appends one self-committed op record (a singleton write or a
// serializable range update).
func (l *Log) AppendOps(ops []Op) error {
	return l.appendRecord(func(dst []byte) []byte { return encodeOps(dst, ops) })
}

// BeginUnit opens a batch commit unit and returns its id. The unit holds
// the checkpoint drain (unitMu read side) until EndUnit, so a checkpoint
// boundary can never split it. Every BeginUnit must be paired with EndUnit.
func (l *Log) BeginUnit() uint64 {
	l.unitMu.RLock()
	return l.unitSeq.Add(1)
}

// AppendBatchPart appends one group commit's effective ops under unit.
func (l *Log) AppendBatchPart(unit uint64, ops []Op) error {
	return l.appendRecord(func(dst []byte) []byte { return encodeBatchPart(dst, unit, ops) })
}

// EndUnit appends unit's commit marker and releases the checkpoint drain.
// Recovery replays the unit's parts only when this marker reached the disk,
// so a crash mid-batch can never surface a torn batch.
func (l *Log) EndUnit(unit uint64) error {
	err := l.appendRecord(func(dst []byte) []byte { return encodeBatchCommit(dst, unit) })
	l.unitMu.RUnlock()
	return err
}

// Commit makes the log's current tail durable per the configured policy and
// returns the log's health. Under SyncEveryCommit it blocks until every
// record appended so far is fsynced; under SyncInterval/SyncOS it returns
// immediately (the policy is the caller's chosen durability window).
func (l *Log) Commit() error {
	switch l.opts.Policy {
	case SyncEveryCommit:
		return l.syncTo(l.tailLSN.Load())
	case SyncOS:
		// No fsync, but the staged records are handed to the OS now: SyncOS
		// promises page-cache durability, not process-memory durability.
		l.appendMu.Lock()
		defer l.appendMu.Unlock()
		if l.err != nil {
			return l.err
		}
		if l.closed {
			return ErrClosed
		}
		return l.flushLocked()
	default:
		return l.Err()
	}
}

// Sync forces an fsync of the log tail regardless of policy.
func (l *Log) Sync() error {
	return l.syncTo(l.tailLSN.Load())
}

// syncTo blocks until records [1,target] are durable. Waiters queue on
// syncMu; each fsync covers everything appended before it started, so a
// follower usually finds its target already durable — the group commit.
func (l *Log) syncTo(target uint64) error {
	if l.durableLSN.Load() >= target {
		return l.Err()
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.durableLSN.Load() >= target {
		return l.Err()
	}
	l.appendMu.Lock()
	if l.err != nil {
		err := l.err
		l.appendMu.Unlock()
		return err
	}
	if err := l.flushLocked(); err != nil {
		l.appendMu.Unlock()
		return err
	}
	f := l.tailFile
	flushed := l.tailLSN.Load()
	l.appendMu.Unlock()

	chaos.Step(chaos.WALCrashPoint) // records written, fsync not yet issued
	if err := f.Sync(); err != nil {
		l.poison(fmt.Errorf("wal: fsync: %w", err))
		return err
	}
	chaos.Step(chaos.WALCrashPoint) // fsync done, ack not yet delivered
	l.c.fsyncs.Add(1)
	// Monotonic advance: a racing rotation may already have published a
	// higher durable LSN.
	for {
		cur := l.durableLSN.Load()
		if cur >= flushed || l.durableLSN.CompareAndSwap(cur, flushed) {
			return nil
		}
	}
}

func (l *Log) poison(err error) {
	l.appendMu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.appendMu.Unlock()
}

// rotateLocked finishes the current tail segment (fsync, so the durability
// boundary only ever concerns the newest segment) and opens a fresh one,
// appending it to the manifest. Caller holds appendMu.
func (l *Log) rotateLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.tailFile.Sync(); err != nil {
		return fmt.Errorf("wal: rotate sync: %w", err)
	}
	l.c.fsyncs.Add(1)
	for {
		cur := l.durableLSN.Load()
		lsn := l.tailLSN.Load()
		if cur >= lsn || l.durableLSN.CompareAndSwap(cur, lsn) {
			break
		}
	}
	old := l.mf.segments[len(l.mf.segments)-1]
	l.retired[old] = l.tailFile
	return l.openNewTailLocked()
}

// openNewTailLocked creates the next segment file and publishes it in the
// manifest. Caller holds appendMu.
func (l *Log) openNewTailLocked() error {
	name := segmentName(l.nextID)
	l.nextID++
	f, err := l.fs.Create(path.Join(l.dir, name))
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	// Persist the (empty) segment before the manifest references it, so a
	// crash between the two never yields a manifest pointing at nothing.
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync new segment: %w", err)
	}
	next := &manifest{checkpoint: l.mf.checkpoint, segments: append(append([]string(nil), l.mf.segments...), name)}
	if err := writeManifest(l.fs, l.dir, next); err != nil {
		f.Close()
		return fmt.Errorf("wal: manifest: %w", err)
	}
	l.mf = next
	l.tailFile = f
	l.tailSize = 0
	l.c.segsCreated.Add(1)
	return nil
}

// flushLoop is the SyncInterval background fsync.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stopFlush:
			return
		case <-t.C:
			if l.durableLSN.Load() < l.tailLSN.Load() {
				_ = l.syncTo(l.tailLSN.Load())
			}
		}
	}
}

// Close fsyncs the tail (best effort when already poisoned) and closes every
// file handle. The log must not be appended to afterwards.
func (l *Log) Close() error {
	if l.stopFlush != nil {
		close(l.stopFlush)
		<-l.flushDone
		l.stopFlush = nil
	}
	syncErr := l.Sync()
	l.appendMu.Lock()
	defer l.appendMu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.closed = true
	if l.tailFile != nil {
		l.tailFile.Close()
	}
	for _, f := range l.retired {
		f.Close()
	}
	l.retired = map[string]File{}
	if errors.Is(syncErr, ErrClosed) {
		syncErr = nil
	}
	return syncErr
}

// MaxAppendedUnit returns the highest batch unit id ever observed (recovery
// seeds it past every unit in the log, committed or not, so a reused id can
// never adopt an earlier life's orphaned part frames).
func (l *Log) MaxAppendedUnit() uint64 { return l.unitSeq.Load() }

// CheckpointWriter streams one checkpoint's chunk images into a fresh file;
// Commit swaps the manifest and prunes everything the checkpoint replaced.
type CheckpointWriter struct {
	l        *Log
	f        File
	name     string
	boundary string // first op segment NOT covered by the checkpoint
	payload  []byte
	frame    []byte
	chunks   uint64
	keys     uint64
	done     bool
}

// BeginCheckpoint starts an online checkpoint. It drains in-flight batch
// units, then — atomically with respect to appends — calls pin (the caller
// pins its consistent snapshot there) and cuts the op segment, making the
// snapshot/boundary pair exact: every record in segments before the cut is
// visible in the pinned snapshot, and every record after it replays
// idempotently on top of the checkpoint. Writers proceed as soon as
// BeginCheckpoint returns; only the drain and the cut are blocking.
func (l *Log) BeginCheckpoint(pin func()) (*CheckpointWriter, error) {
	l.unitMu.Lock()
	l.appendMu.Lock()
	if l.err != nil || l.closed {
		err := l.err
		if err == nil {
			err = ErrClosed
		}
		l.appendMu.Unlock()
		l.unitMu.Unlock()
		return nil, err
	}
	pin()
	if err := l.rotateLocked(); err != nil {
		l.err = err
		l.appendMu.Unlock()
		l.unitMu.Unlock()
		return nil, err
	}
	boundary := l.mf.segments[len(l.mf.segments)-1]
	id := l.nextID
	l.nextID++
	l.appendMu.Unlock()
	l.unitMu.Unlock()

	name := ckptName(id)
	f, err := l.fs.Create(path.Join(l.dir, name))
	if err != nil {
		return nil, fmt.Errorf("wal: create checkpoint: %w", err)
	}
	cw := &CheckpointWriter{l: l, f: f, name: name, boundary: boundary}
	if err := cw.writeFrame(encodeCheckpointStart(cw.payload[:0])); err != nil {
		cw.Abort()
		return nil, fmt.Errorf("wal: checkpoint start: %w", err)
	}
	return cw, nil
}

// writeFrame frames payload (built in cw.payload) and writes it out.
func (cw *CheckpointWriter) writeFrame(payload []byte) error {
	cw.payload = payload
	cw.frame = appendFrame(cw.frame[:0], payload)
	_, err := cw.f.Write(cw.frame)
	return err
}

// WriteChunk appends one sorted chunk image. Successive calls must carry
// globally ascending keys (the snapshot walk's order).
func (cw *CheckpointWriter) WriteChunk(keys []int64, vals [][]byte) error {
	if len(keys) == 0 {
		return nil
	}
	chaos.Step(chaos.WALCrashPoint) // between checkpoint segment writes
	if err := cw.writeFrame(encodeChunkImage(cw.payload[:0], keys, vals)); err != nil {
		return fmt.Errorf("wal: checkpoint chunk: %w", err)
	}
	cw.chunks++
	cw.keys += uint64(len(keys))
	return nil
}

// Abort discards an uncommitted checkpoint; the half-written file is
// deleted (and would be garbage-collected at the next open regardless).
func (cw *CheckpointWriter) Abort() {
	if cw.done {
		return
	}
	cw.done = true
	cw.f.Close()
	_ = cw.l.fs.Remove(path.Join(cw.l.dir, cw.name))
}

// Commit seals the checkpoint (end marker + fsync), atomically swaps the
// manifest to [checkpoint, segments from the boundary cut onward], and
// prunes the files the swap unreferenced — strictly in that order, so a
// crash at any point leaves either the old catalog with every old file
// intact or the new catalog with the checkpoint fully durable; pruned
// files are by then referenced by neither.
func (cw *CheckpointWriter) Commit() error {
	if cw.done {
		return errors.New("wal: checkpoint already finished")
	}
	cw.done = true
	l := cw.l
	if err := cw.writeFrame(encodeCheckpointEnd(cw.payload[:0], cw.chunks, cw.keys)); err != nil {
		cw.f.Close()
		return fmt.Errorf("wal: checkpoint end: %w", err)
	}
	if err := cw.f.Sync(); err != nil {
		cw.f.Close()
		return fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	l.c.fsyncs.Add(1)
	if err := cw.f.Close(); err != nil {
		return err
	}

	chaos.Step(chaos.WALCrashPoint) // checkpoint durable, manifest still old
	l.appendMu.Lock()
	if l.err != nil {
		err := l.err
		l.appendMu.Unlock()
		return err
	}
	// Keep the boundary segment and everything after it; the checkpoint
	// replaces all earlier segments and any previous checkpoint.
	cut := -1
	for i, s := range l.mf.segments {
		if s == cw.boundary {
			cut = i
			break
		}
	}
	if cut < 0 {
		// The boundary segment can only leave the manifest through another
		// checkpoint's prune; concurrent checkpoints are caller-serialized.
		l.appendMu.Unlock()
		return errors.New("wal: checkpoint boundary segment missing from manifest")
	}
	oldCkpt := l.mf.checkpoint
	pruned := append([]string(nil), l.mf.segments[:cut]...)
	next := &manifest{checkpoint: cw.name, segments: append([]string(nil), l.mf.segments[cut:]...)}
	if err := writeManifest(l.fs, l.dir, next); err != nil {
		l.appendMu.Unlock()
		return fmt.Errorf("wal: checkpoint manifest swap: %w", err)
	}
	l.mf = next
	retired := make([]File, 0, len(pruned))
	for _, s := range pruned {
		if f, ok := l.retired[s]; ok {
			retired = append(retired, f)
			delete(l.retired, s)
		}
	}
	l.appendMu.Unlock()
	chaos.Step(chaos.WALCrashPoint) // manifest swapped, old files not yet pruned

	// Prune: the swap above is the commit point, so these files are now
	// unreferenced by construction — never deleted while any manifest that
	// could survive a crash still names them.
	if oldCkpt != "" {
		pruned = append(pruned, oldCkpt)
	}
	for _, f := range retired {
		f.Close()
	}
	for _, name := range pruned {
		if err := l.fs.Remove(path.Join(l.dir, name)); err == nil {
			l.c.segsPruned.Add(1)
		}
	}
	l.c.checkpoints.Add(1)
	l.c.ckptChunks.Add(cw.chunks)
	return nil
}
