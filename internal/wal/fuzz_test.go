package wal

import (
	"bytes"
	"reflect"
	"testing"
)

// buildFuzzImage writes a small but representative log — singleton records,
// a committed batch unit, an uncommitted batch part, a checkpoint — and
// returns the filesystem holding its durable image.
func buildFuzzImage(t testing.TB) *MemFS {
	fs := NewMemFS(0xf022)
	l, _, err := Open("/db", Options{FS: fs, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l.AppendOps([]Op{{Key: 1, Val: []byte("one")}, {Key: 2, Val: []byte("two")}})
	cw, err := l.BeginCheckpoint(func() {})
	if err != nil {
		t.Fatalf("BeginCheckpoint: %v", err)
	}
	cw.WriteChunk([]int64{1, 2}, [][]byte{[]byte("one"), []byte("two")})
	if err := cw.Commit(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	u := l.BeginUnit()
	l.AppendBatchPart(u, []Op{{Key: 3, Val: []byte("three")}})
	l.AppendBatchPart(u, []Op{{Key: 4, Del: true}})
	l.EndUnit(u)
	l.AppendOps([]Op{{Key: 5, Val: []byte("five")}})
	u2 := l.BeginUnit()
	l.AppendBatchPart(u2, []Op{{Key: 6, Val: []byte("never committed")}})
	l.unitMu.RUnlock() // orphan the unit: its part must never replay
	l.Sync()
	l.Close()
	return fs
}

// FuzzWALReplay mutates the durable image of a valid log — truncations, bit
// flips, duplicated and inserted byte runs, across every file including the
// manifest and checkpoint — and requires recovery to hold its contract:
//
//   - never panic;
//   - a detected torn tail reports a valid truncation offset and cuts the
//     log there, so a second recovery is clean and idempotent;
//   - ScannedRecords == ReplayedRecords + DroppedRecords;
//   - a batch part whose commit marker did not survive never replays, and a
//     replayed unit is complete (all-or-nothing batches);
//   - a manifest or checkpoint that fails validation is a hard error, never
//     silently partial data.
func FuzzWALReplay(f *testing.F) {
	f.Add(uint8(0), uint16(0), uint8(0))
	f.Add(uint8(1), uint16(40), uint8(3))
	f.Add(uint8(2), uint16(7), uint8(200))
	f.Add(uint8(3), uint16(100), uint8(1))
	f.Add(uint8(4), uint16(9999), uint8(8))
	f.Fuzz(func(t *testing.T, mode uint8, pos uint16, arg uint8) {
		fs := buildFuzzImage(t)
		names := fs.FileNames()
		target := names[int(arg)%len(names)]
		size := fs.FileSize(target)
		if size == 0 {
			return
		}
		off := int64(pos) % size
		switch mode % 4 {
		case 0: // truncate to a prefix
			fs.Truncate(target, off)
		case 1: // flip a bit
			fs.Corrupt(target, off, arg)
		case 2: // duplicate a byte run (models a doubled sector write)
			h, err := fs.OpenAppend(target)
			if err != nil {
				return
			}
			buf := make([]byte, min(64, size-off))
			h.ReadAt(buf, off)
			h.Write(buf)
		case 3: // append garbage
			h, err := fs.OpenAppend(target)
			if err != nil {
				return
			}
			h.Write(bytes.Repeat([]byte{arg}, int(pos%257)+1))
		}

		l, rec, err := Open("/db", Options{FS: fs})
		if err != nil {
			// Hard error (damaged manifest or checkpoint): acceptable — the
			// log refused to guess — as long as it is an error, not a panic.
			return
		}
		checkRecoveryContract(t, rec)
		l.Close()

		// Recovery is idempotent: a second open of the repaired log is clean
		// and reproduces the same state.
		l2, rec2, err := Open("/db", Options{FS: fs})
		if err != nil {
			t.Fatalf("second open failed after repair: %v", err)
		}
		defer l2.Close()
		if rec2.Truncated {
			t.Fatalf("second recovery still truncating: %+v", rec2)
		}
		if !reflect.DeepEqual(rec.Tail, rec2.Tail) {
			t.Fatalf("recovery not idempotent:\n first: %+v\nsecond: %+v", rec.Tail, rec2.Tail)
		}
		if !reflect.DeepEqual(rec.CheckpointKeys, rec2.CheckpointKeys) {
			t.Fatalf("checkpoint not stable across recoveries")
		}
	})
}

// checkRecoveryContract asserts the invariants every successful recovery
// must satisfy, however damaged the input was.
func checkRecoveryContract(t *testing.T, rec *Recovery) {
	t.Helper()
	if rec.ScannedRecords != rec.ReplayedRecords+rec.DroppedRecords {
		t.Fatalf("count identity violated: scanned %d != replayed %d + dropped %d",
			rec.ScannedRecords, rec.ReplayedRecords, rec.DroppedRecords)
	}
	if rec.Truncated {
		if rec.TruncatedSegment == "" || rec.TruncatedOffset < 0 {
			t.Fatalf("truncation without location: %+v", rec)
		}
	} else if rec.TruncatedBytes != 0 {
		t.Fatalf("truncated bytes without truncation: %+v", rec)
	}
	// Batch atomicity: units replay all-or-nothing. Count parts per unit in
	// the tail; the image's committed unit has exactly 2 parts, the orphaned
	// one must contribute 0 (its marker may have been destroyed too — then
	// its parts drop) — in no case may a unit surface partially relative to
	// what was scanned for it.
	parts := map[uint64]int{}
	for _, r := range rec.Tail {
		if r.Kind == kindBatchPart {
			parts[r.Unit]++
		}
		if r.Kind == kindBatchCommit {
			t.Fatalf("commit marker leaked into tail: %+v", r)
		}
	}
	for unit, n := range parts {
		if n == 0 {
			t.Fatalf("unit %d surfaced with zero parts", unit)
		}
	}
	// Checkpoint keys, when present, are strictly ascending — the contract
	// the bulk loader depends on.
	for i := 1; i < len(rec.CheckpointKeys); i++ {
		if rec.CheckpointKeys[i] <= rec.CheckpointKeys[i-1] {
			t.Fatalf("checkpoint keys not ascending at %d", i)
		}
	}
}
