package hazard

import "testing"

func BenchmarkProtectClear(b *testing.B) {
	d := NewDomain[nodeT](nil)
	h := d.NewHandle()
	n := &nodeT{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Protect(0, n)
		h.Clear(0)
	}
}

func BenchmarkRetireScan(b *testing.B) {
	d := NewDomain[nodeT](func(*nodeT) {})
	h := d.NewHandle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Retire(&nodeT{id: i})
	}
	b.StopTimer()
	h.Flush()
}

func BenchmarkClearAll(b *testing.B) {
	d := NewDomain[nodeT](nil)
	h := d.NewHandle()
	n := &nodeT{}
	for i := 0; i < SlotsPerHandle; i++ {
		h.Protect(i, n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ClearAll()
		h.Protect(0, n)
		h.Protect(3, n)
	}
}
