package hazard

import (
	"sync"
	"sync/atomic"
	"testing"
)

type nodeT struct {
	id int
}

func TestRetireWithoutProtectionRecycles(t *testing.T) {
	var recycled []*nodeT
	d := NewDomain(func(n *nodeT) { recycled = append(recycled, n) })
	h := d.NewHandle()
	nodes := make([]*nodeT, ScanThreshold)
	for i := range nodes {
		nodes[i] = &nodeT{id: i}
		h.Retire(nodes[i])
	}
	// The ScanThreshold-th retire triggers a scan; nothing is protected.
	if len(recycled) != ScanThreshold {
		t.Fatalf("recycled %d nodes, want %d", len(recycled), ScanThreshold)
	}
	if d.RetiredCount() != 0 {
		t.Fatalf("RetiredCount = %d, want 0", d.RetiredCount())
	}
	if d.RecycledCount() != int64(ScanThreshold) {
		t.Fatalf("RecycledCount = %d", d.RecycledCount())
	}
}

func TestProtectedNodeSurvivesScan(t *testing.T) {
	var recycled []*nodeT
	d := NewDomain(func(n *nodeT) { recycled = append(recycled, n) })
	owner := d.NewHandle()
	reader := d.NewHandle()

	victim := &nodeT{id: -1}
	reader.Protect(0, victim)

	owner.Retire(victim)
	for i := 0; i < ScanThreshold+4; i++ {
		owner.Retire(&nodeT{id: i})
	}
	for _, n := range recycled {
		if n == victim {
			t.Fatal("protected node was recycled")
		}
	}
	// The victim plus any retires after the last scan remain pending.
	if got := d.RetiredCount(); got < 1 || got > ScanThreshold {
		t.Fatalf("RetiredCount = %d, want within [1,%d]", got, ScanThreshold)
	}

	// Dropping protection and flushing releases it.
	reader.Clear(0)
	owner.Flush()
	found := false
	for _, n := range recycled {
		if n == victim {
			found = true
		}
	}
	if !found {
		t.Fatal("victim not recycled after protection dropped")
	}
}

func TestClearAll(t *testing.T) {
	d := NewDomain[nodeT](nil)
	h := d.NewHandle()
	for i := 0; i < SlotsPerHandle; i++ {
		h.Protect(i, &nodeT{id: i})
	}
	h.ClearAll()
	for i := 0; i < SlotsPerHandle; i++ {
		if h.slots[i].Load() != nil {
			t.Fatalf("slot %d not cleared", i)
		}
	}
}

func TestNilRecycleHook(t *testing.T) {
	d := NewDomain[nodeT](nil)
	h := d.NewHandle()
	for i := 0; i < ScanThreshold; i++ {
		h.Retire(&nodeT{id: i})
	}
	if d.RetiredCount() != 0 {
		t.Fatalf("RetiredCount = %d, want 0", d.RetiredCount())
	}
}

func TestHandleRegistration(t *testing.T) {
	d := NewDomain[nodeT](nil)
	if d.Handles() != 0 {
		t.Fatalf("fresh domain has %d handles", d.Handles())
	}
	var hs []*Handle[nodeT]
	for i := 0; i < 5; i++ {
		hs = append(hs, d.NewHandle())
	}
	if d.Handles() != 5 {
		t.Fatalf("Handles = %d, want 5", d.Handles())
	}
	_ = hs
}

// TestBoundedGarbage verifies the paper's bounded-garbage property: retired
// but unreclaimed nodes never exceed handles × ScanThreshold even under a
// protect/retire storm.
func TestBoundedGarbage(t *testing.T) {
	d := NewDomain[nodeT](nil)
	const workers = 4
	var wg sync.WaitGroup
	var maxRetired atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := d.NewHandle()
			for i := 0; i < 5000; i++ {
				n := &nodeT{id: i}
				h.Protect(0, n)
				h.Clear(0)
				h.Retire(n)
				if r := d.RetiredCount(); r > maxRetired.Load() {
					maxRetired.Store(r)
				}
			}
			h.Flush()
		}()
	}
	wg.Wait()
	bound := int64(workers * ScanThreshold)
	if got := maxRetired.Load(); got > bound {
		t.Fatalf("retired high-water %d exceeds bound %d", got, bound)
	}
	if d.RetiredCount() != 0 {
		t.Fatalf("RetiredCount = %d after flush, want 0", d.RetiredCount())
	}
}

// TestConcurrentProtectRetire stress-tests the core safety property: a node
// that a reader has protected and re-validated is never recycled while the
// protection holds. The "validation" here is a generation counter standing
// in for the skip vector's sequence lock.
func TestConcurrentProtectRetire(t *testing.T) {
	type cell struct {
		ptr atomic.Pointer[nodeT]
		gen atomic.Int64
	}
	var shared cell
	shared.ptr.Store(&nodeT{id: 0})

	recycledSet := sync.Map{}
	d := NewDomain(func(n *nodeT) { recycledSet.Store(n, true) })

	var stop atomic.Bool
	var violations atomic.Int64
	var wg sync.WaitGroup

	// Writer: swaps the shared node and retires the old one.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := d.NewHandle()
		for i := 1; i < 3000; i++ {
			old := shared.ptr.Load()
			shared.ptr.Store(&nodeT{id: i})
			shared.gen.Add(1)
			h.Retire(old)
		}
		h.Flush()
		stop.Store(true)
	}()

	// Readers: protect, validate generation, then check the node was not
	// recycled while protected.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := d.NewHandle()
			for !stop.Load() {
				g := shared.gen.Load()
				n := shared.ptr.Load()
				h.Protect(0, n)
				if shared.gen.Load() != g {
					h.Clear(0) // validation failed: retry
					continue
				}
				// Protected + validated: n must not be recycled now.
				if _, bad := recycledSet.Load(n); bad {
					violations.Add(1)
				}
				h.Clear(0)
			}
		}()
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d protected nodes were recycled", v)
	}
}

func TestRecycleFilterHoldsNodes(t *testing.T) {
	var recycled []*nodeT
	d := NewDomain(func(n *nodeT) { recycled = append(recycled, n) })
	h := d.NewHandle()

	// The filter rejects odd ids — they must survive every scan, unprotected,
	// until the filter releases them.
	var release atomic.Bool
	d.SetRecycleFilter(func(n *nodeT) bool { return n.id%2 == 0 || release.Load() })

	nodes := make([]*nodeT, 2*ScanThreshold)
	for i := range nodes {
		nodes[i] = &nodeT{id: i}
		h.Retire(nodes[i])
	}
	h.Flush()
	for _, n := range recycled {
		if n.id%2 == 1 {
			t.Fatalf("filter-held node %d recycled", n.id)
		}
	}
	// Every even node was reclaimable and no hazard pointer was published, so
	// pending garbage is exactly the held half.
	if got := d.RetiredCount(); got != int64(len(nodes)/2) {
		t.Fatalf("RetiredCount = %d, want %d held nodes", got, len(nodes)/2)
	}

	// Filter releases (monotone flip): a flush drains everything.
	release.Store(true)
	h.Flush()
	if got := d.RetiredCount(); got != 0 {
		t.Fatalf("RetiredCount = %d after filter release", got)
	}
	if len(recycled) != len(nodes) {
		t.Fatalf("recycled %d of %d after release", len(recycled), len(nodes))
	}
}

func TestRecycleFilterComposesWithProtection(t *testing.T) {
	// A node both hazard-protected and filter-held must stay pending until
	// BOTH clear, in either order.
	for _, order := range []string{"protection-first", "filter-first"} {
		var recycled []*nodeT
		d := NewDomain(func(n *nodeT) { recycled = append(recycled, n) })
		owner := d.NewHandle()
		reader := d.NewHandle()

		var release atomic.Bool
		victim := &nodeT{id: 1}
		d.SetRecycleFilter(func(n *nodeT) bool { return n != victim || release.Load() })
		reader.Protect(0, victim)
		owner.Retire(victim)

		owner.Flush()
		if d.RetiredCount() != 1 {
			t.Fatalf("%s: victim not pending after first flush", order)
		}
		if order == "protection-first" {
			reader.Clear(0)
		} else {
			release.Store(true)
		}
		owner.Flush()
		if d.RetiredCount() != 1 {
			t.Fatalf("%s: victim reclaimed with one guard still up", order)
		}
		if order == "protection-first" {
			release.Store(true)
		} else {
			reader.Clear(0)
		}
		owner.Flush()
		if d.RetiredCount() != 0 || len(recycled) != 1 || recycled[0] != victim {
			t.Fatalf("%s: victim not reclaimed after both guards dropped (pending=%d)",
				order, d.RetiredCount())
		}
	}
}
