// Package hazard implements Michael-style hazard pointers, the precise
// memory-reclamation scheme the skip vector pairs with sequence locks
// (Section III-B of the paper, citing Michael [9]).
//
// In the paper's C++ implementation, hazard pointers prevent a node from
// being freed while another thread may still dereference it, giving a tight
// bound on garbage. Go's collector already guarantees memory safety, so a
// literal port would be invisible; instead this package drives an explicit
// node-recycling freelist: retired nodes are pushed onto the freelist — and
// thus become eligible for immediate reuse — only once a scan proves no
// handle still protects them. That reproduces both sides of the paper's
// claim: the protocol's per-traversal publication cost on the read path and
// the bounded-garbage property on the write path (at most R retired nodes
// per handle await a scan). The skip vector's "Leak" configurations bypass
// this package entirely and let the collector reclaim nodes, mirroring the
// paper's leaky baselines.
//
// The usual hazard-pointer subtlety — publishing a pointer and then
// re-checking that it is still reachable — composes with sequence locks
// exactly as the paper describes: after publishing a hazard pointer for a
// node found in some predecessor, validating the predecessor's sequence lock
// proves the node had not been unlinked when the hazard pointer became
// visible (unlinking bumps the predecessor's sequence number before the node
// is retired).
package hazard

import (
	"sync"
	"sync/atomic"

	"skipvector/internal/chaos"
	"skipvector/internal/telemetry"
)

// SlotsPerHandle is the number of hazard pointers each handle can hold at
// once. Skip vector traversals need at most a handful (current node, next or
// down node, and short-lived extras around merges), far below this bound.
const SlotsPerHandle = 8

// ScanThreshold is the retired-list length that triggers a scan. Michael's
// analysis wants R = Ω(H) where H is the total slot count; a fixed small
// constant keeps garbage tightly bounded, which is the property the paper
// highlights. Exported so the invariant suite can state the bound it implies:
// a handle's retired list never exceeds ScanThreshold entries before a scan,
// and a scan leaves at most one node per protected slot, so domain-wide
// pending garbage is O(handles × (ScanThreshold + SlotsPerHandle)).
const ScanThreshold = 64

// Domain tracks every handle's hazard slots and supplies Retire/scan. A
// domain is typically owned by one data structure instance. T is the node
// type being protected.
type Domain[T any] struct {
	mu      sync.Mutex // guards handles slice growth
	handles atomic.Pointer[[]*Handle[T]]

	// recycle receives nodes proven unreachable; typically it pushes them
	// onto a freelist. If nil, nodes are simply dropped for the GC.
	recycle func(*T)

	// retiredCount tracks nodes retired but not yet recycled, across all
	// handles. Exposed for tests and stats: it is the "bounded garbage".
	retiredCount atomic.Int64
	recycled     atomic.Int64

	// retiredTotal is the monotonic count of Retire calls; with recycled it
	// gives the reclamation identity pending = retiredTotal − recycled that
	// the invariant suite checks. scans counts reclamation sweeps. Both sit
	// on cold paths, so they are always-on plain atomics rather than gated
	// telemetry types.
	retiredTotal atomic.Int64
	scans        atomic.Int64

	// retireHWM records the longest retired list any handle reached
	// (telemetry-gated: one atomic load per Retire when disabled).
	retireHWM telemetry.Max

	// suppressReclaim is a test hook: while set, scans are skipped entirely,
	// so retired nodes are never recycled. The invariant suite uses it to
	// prove its reclamation assertions detect a broken scan.
	suppressReclaim atomic.Bool

	// recycleFilter, when installed, is consulted by scans for every retired
	// node that no hazard pointer protects: returning false keeps the node on
	// the retired list for a later scan. It extends the reclamation condition
	// from "no hazard pointer" to "no hazard pointer AND the filter agrees",
	// which is how MVCC snapshots pin retired pre-image nodes past their
	// unlink (epoch-aware reclamation): the filter holds back any node whose
	// retire epoch a pinned snapshot can still see. The filter must be
	// monotone per node — once it returns true for a node it must keep doing
	// so — since a node it releases may be recycled immediately.
	recycleFilter atomic.Pointer[func(*T) bool]
}

// NewDomain creates a hazard-pointer domain. recycle, if non-nil, is invoked
// (on the retiring goroutine) for each node once no hazard pointer can
// reference it.
func NewDomain[T any](recycle func(*T)) *Domain[T] {
	d := &Domain[T]{recycle: recycle}
	empty := make([]*Handle[T], 0)
	d.handles.Store(&empty)
	return d
}

// Handle is a participant's set of hazard-pointer slots plus its private
// retired list. Handles are not safe for concurrent use; acquire one per
// goroutine (or pool them).
type Handle[T any] struct {
	domain  *Domain[T]
	slots   [SlotsPerHandle]atomic.Pointer[T]
	used    int // high-water mark of slots in use (stack discipline not required)
	retired []*T
	inUse   atomic.Bool
}

// NewHandle registers a new handle with the domain. Handles are never
// unregistered (their slots read as nil once released); pools should reuse
// them via Acquire/ReleaseToPool semantics of the caller.
func (d *Domain[T]) NewHandle() *Handle[T] {
	h := &Handle[T]{domain: d, retired: make([]*T, 0, ScanThreshold+8)}
	h.inUse.Store(true)
	d.mu.Lock()
	old := *d.handles.Load()
	next := make([]*Handle[T], len(old)+1)
	copy(next, old)
	next[len(old)] = h
	d.handles.Store(&next)
	d.mu.Unlock()
	return h
}

// Handles returns the number of registered handles (for stats/tests).
func (d *Domain[T]) Handles() int { return len(*d.handles.Load()) }

// RetiredCount returns the number of nodes retired but not yet recycled.
func (d *Domain[T]) RetiredCount() int64 { return d.retiredCount.Load() }

// RecycledCount returns the number of nodes passed to the recycle hook.
func (d *Domain[T]) RecycledCount() int64 { return d.recycled.Load() }

// RetiredTotal returns the monotonic count of Retire calls since creation.
func (d *Domain[T]) RetiredTotal() int64 { return d.retiredTotal.Load() }

// Scans returns the number of reclamation scans performed.
func (d *Domain[T]) Scans() int64 { return d.scans.Load() }

// RetireHWM returns the longest retired list any handle reached while
// telemetry recording was enabled.
func (d *Domain[T]) RetireHWM() int64 { return d.retireHWM.Load() }

// SetReclaimSuppressed toggles the scan-suppression test hook. While
// suppressed, Retire still appends to the retired list but no scan runs, so
// nothing is ever recycled — deliberately violating the precise-reclamation
// bound so tests can confirm their assertions notice.
func (d *Domain[T]) SetReclaimSuppressed(on bool) { d.suppressReclaim.Store(on) }

// SetRecycleFilter installs (or, with nil, removes) the epoch-aware
// reclamation filter; see the field comment for the contract. Installation
// is not synchronized against in-flight scans: a scan that already read the
// previous filter may recycle a node the new filter would have kept, so the
// filter must be installed before any node it needs to protect is retired
// (the skip vector installs it at construction time).
func (d *Domain[T]) SetRecycleFilter(f func(*T) bool) {
	if f == nil {
		d.recycleFilter.Store(nil)
		return
	}
	d.recycleFilter.Store(&f)
}

// ResetRetireHWM clears the retire-list high-water mark. The mark is sticky
// by design (a transient pile-up should stay visible); resetting it is for
// tests that injected such a pile-up on purpose and want to verify the domain
// returns to bounded behaviour afterwards.
func (d *Domain[T]) ResetRetireHWM() { d.retireHWM.Reset() }

// Protect publishes p in slot i. The caller must subsequently re-validate
// (via the owning node's sequence lock) that p is still reachable before
// dereferencing it. Protecting nil clears the slot.
func (h *Handle[T]) Protect(i int, p *T) {
	h.slots[i].Store(p)
}

// Slot returns the pointer currently protected by slot i (nil when free).
func (h *Handle[T]) Slot(i int) *T {
	return h.slots[i].Load()
}

// Clear drops the hazard pointer in slot i.
func (h *Handle[T]) Clear(i int) {
	h.slots[i].Store(nil)
}

// ClearAll drops every hazard pointer held by the handle. Called on
// operation restart ("HP.dropAll" in the paper's listings).
func (h *Handle[T]) ClearAll() {
	for i := range h.slots {
		if h.slots[i].Load() != nil {
			h.slots[i].Store(nil)
		}
	}
}

// Retire marks p as logically deleted ("HP.mark" in the listings). Once no
// handle protects p, it is handed to the domain's recycle hook. Retire may
// trigger a scan of all handles' slots.
func (h *Handle[T]) Retire(p *T) {
	h.retired = append(h.retired, p)
	h.domain.retiredCount.Add(1)
	h.domain.retiredTotal.Add(1)
	h.domain.retireHWM.Observe(int64(len(h.retired)))
	// A forced chaos failure scans early, racing reclamation against
	// in-flight traversals far more often than the threshold would.
	if len(h.retired) >= ScanThreshold || chaos.Fail(chaos.HazardRetire) {
		h.scan()
	}
}

// Flush forces a scan regardless of the retired-list length. Useful when a
// handle is about to be parked in a pool.
func (h *Handle[T]) Flush() {
	if len(h.retired) > 0 {
		h.scan()
	}
}

// scan implements Michael's reclamation scan: snapshot every published
// hazard pointer, then recycle retired nodes not in the snapshot.
func (h *Handle[T]) scan() {
	if h.domain.suppressReclaim.Load() {
		return
	}
	h.domain.scans.Add(1)
	handles := *h.domain.handles.Load()
	protected := make(map[*T]struct{}, len(handles)*2)
	for _, other := range handles {
		for i := range other.slots {
			if p := other.slots[i].Load(); p != nil {
				protected[p] = struct{}{}
			}
		}
	}
	// Perturbing between the snapshot and the sweep stretches the window
	// in which a traversal may publish a hazard pointer the snapshot
	// missed; the protocol tolerates it because such a node was already
	// unreachable when it was retired.
	chaos.Step(chaos.HazardScan)
	var filter func(*T) bool
	if fp := h.domain.recycleFilter.Load(); fp != nil {
		filter = *fp
	}
	keep := h.retired[:0]
	for _, p := range h.retired {
		if _, live := protected[p]; live {
			keep = append(keep, p)
			continue
		}
		if filter != nil && !filter(p) {
			keep = append(keep, p)
			continue
		}
		h.domain.retiredCount.Add(-1)
		h.domain.recycled.Add(1)
		if h.domain.recycle != nil {
			h.domain.recycle(p)
		}
	}
	// Zero the tail so recycled nodes are not pinned by the backing array.
	for i := len(keep); i < len(h.retired); i++ {
		h.retired[i] = nil
	}
	h.retired = keep
}
